#include "common/buffer.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "common/crc32c.h"

namespace doceph {
namespace {

BufferList fragmented(const std::string& s, std::size_t frag) {
  BufferList bl;
  for (std::size_t i = 0; i < s.size(); i += frag)
    bl.append(s.substr(i, frag));
  return bl;
}

TEST(Slice, AllocateAndFill) {
  Slice s = Slice::allocate(16);
  std::memset(s.mutable_data(), 'x', 16);
  EXPECT_EQ(s.size(), 16u);
  EXPECT_EQ(std::string(s.data(), s.size()), std::string(16, 'x'));
}

TEST(Slice, SubsliceSharesStorage) {
  Slice s = Slice::copy_of("hello world");
  Slice sub = s.subslice(6, 5);
  EXPECT_EQ(std::string(sub.data(), sub.size()), "world");
  // Shared storage: mutating the parent is visible in the subslice.
  s.mutable_data()[6] = 'W';
  EXPECT_EQ(sub.data()[0], 'W');
}

TEST(BufferList, EmptyBasics) {
  const BufferList bl;
  EXPECT_TRUE(bl.empty());
  EXPECT_EQ(bl.length(), 0u);
  EXPECT_EQ(bl.to_string(), "");
  EXPECT_EQ(bl.crc32c(), 0u);
}

TEST(BufferList, AppendAndToString) {
  BufferList bl;
  bl.append("abc");
  bl.append("def");
  bl.append('g');
  EXPECT_EQ(bl.length(), 7u);
  EXPECT_EQ(bl.num_slices(), 3u);
  EXPECT_EQ(bl.to_string(), "abcdefg");
}

TEST(BufferList, AppendZero) {
  BufferList bl;
  bl.append_zero(5);
  EXPECT_EQ(bl.to_string(), std::string(5, '\0'));
}

TEST(BufferList, AppendOtherIsZeroCopy) {
  BufferList a = fragmented("0123456789", 3);
  BufferList b;
  b.append("xx");
  b.append(a);
  EXPECT_EQ(b.to_string(), "xx0123456789");
  EXPECT_EQ(b.num_slices(), 1u + a.num_slices());
}

TEST(BufferList, ClaimAppendEmptiesSource) {
  BufferList a = fragmented("abcdef", 2);
  BufferList b;
  b.append("Z");
  b.claim_append(a);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.num_slices(), 0u);
  EXPECT_EQ(b.to_string(), "Zabcdef");
}

TEST(BufferList, SubstrWithinOneSlice) {
  BufferList bl;
  bl.append("hello world");
  EXPECT_EQ(bl.substr(6, 5).to_string(), "world");
}

TEST(BufferList, SubstrAcrossSlices) {
  BufferList bl = fragmented("hello cruel world", 4);
  EXPECT_EQ(bl.substr(6, 5).to_string(), "cruel");
  EXPECT_EQ(bl.substr(0, 17).to_string(), "hello cruel world");
}

TEST(BufferList, SubstrClampsPastEnd) {
  BufferList bl = fragmented("abcdef", 2);
  EXPECT_EQ(bl.substr(4, 100).to_string(), "ef");
  EXPECT_TRUE(bl.substr(6, 5).empty());
  EXPECT_TRUE(bl.substr(100, 5).empty());
}

TEST(BufferList, SubstrIsZeroCopy) {
  BufferList bl = fragmented(std::string(1000, 'q'), 100);
  BufferList sub = bl.substr(150, 700);
  EXPECT_EQ(sub.length(), 700u);
  EXPECT_LE(sub.num_slices(), 8u);  // views, not copies
}

TEST(BufferList, CopyOut) {
  BufferList bl = fragmented("0123456789", 3);
  char buf[5] = {};
  EXPECT_EQ(bl.copy_out(2, 5, buf), 5u);
  EXPECT_EQ(std::string(buf, 5), "23456");
  EXPECT_EQ(bl.copy_out(8, 10, buf), 2u);  // clamped
}

TEST(BufferList, Crc32cMatchesContiguous) {
  const std::string s = "some payload for checksumming, long enough to span";
  const std::uint32_t ref = crc32c(s.data(), s.size());
  for (std::size_t frag : {1u, 2u, 7u, 16u, 64u}) {
    EXPECT_EQ(fragmented(s, frag).crc32c(), ref) << "frag " << frag;
  }
}

TEST(BufferList, EqualityIgnoresFragmentation) {
  const std::string s = "equality is content-based";
  EXPECT_EQ(fragmented(s, 3), fragmented(s, 7));
  EXPECT_FALSE(fragmented(s, 3) == fragmented(s + "x", 3));
  EXPECT_FALSE(fragmented("abc", 1) == fragmented("abd", 3));
}

TEST(BufferList, ContiguousFlattens) {
  BufferList bl = fragmented("xyzw", 1);
  Slice s = bl.contiguous();
  EXPECT_EQ(std::string(s.data(), s.size()), "xyzw");
  // Single-slice lists are returned as-is (no copy).
  BufferList one;
  one.append("solo");
  EXPECT_EQ(one.contiguous().data(), one.slices().front().data());
}

TEST(BufferListCursor, SequentialReads) {
  BufferList bl = fragmented("0123456789", 4);
  BufferList::Cursor cur(bl);
  char a[3], b[4];
  EXPECT_TRUE(cur.copy(3, a));
  EXPECT_EQ(std::string(a, 3), "012");
  EXPECT_TRUE(cur.skip(2));
  EXPECT_TRUE(cur.copy(4, b));
  EXPECT_EQ(std::string(b, 4), "5678");
  EXPECT_EQ(cur.remaining(), 1u);
  EXPECT_FALSE(cur.copy(2, a));       // not enough left
  EXPECT_EQ(cur.remaining(), 1u);     // failed read does not advance
}

TEST(BufferListCursor, GetBufferListZeroCopy) {
  BufferList bl = fragmented(std::string(256, 'k'), 64);
  BufferList::Cursor cur(bl);
  BufferList out;
  EXPECT_TRUE(cur.get_buffer_list(128, out));
  EXPECT_EQ(out.length(), 128u);
  EXPECT_EQ(cur.remaining(), 128u);
  BufferList rest;
  EXPECT_FALSE(cur.get_buffer_list(200, rest));
  EXPECT_TRUE(cur.get_buffer_list(128, rest));
  EXPECT_EQ(cur.remaining(), 0u);
}

TEST(BufferList, LargePayloadRoundTrip) {
  std::string big(1 << 20, '\0');
  std::iota(big.begin(), big.end(), 0);
  BufferList bl = fragmented(big, 4096);
  EXPECT_EQ(bl.length(), big.size());
  EXPECT_EQ(bl.to_string(), big);
  EXPECT_EQ(bl.crc32c(), crc32c(big.data(), big.size()));
}

}  // namespace
}  // namespace doceph
