#include "common/interval_set.h"

#include <gtest/gtest.h>

#include <random>

namespace doceph {
namespace {

TEST(IntervalSet, EmptyBasics) {
  IntervalSet<> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.intersects(0, 100));
  EXPECT_TRUE(s.contains(5, 0));  // empty range trivially contained
}

TEST(IntervalSet, InsertAndContains) {
  IntervalSet<> s;
  s.insert(10, 5);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.num_intervals(), 1u);
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(14));
  EXPECT_FALSE(s.contains(15));
  EXPECT_FALSE(s.contains(9));
  EXPECT_TRUE(s.contains(10, 5));
  EXPECT_FALSE(s.contains(10, 6));
}

TEST(IntervalSet, CoalescesAdjacent) {
  IntervalSet<> s;
  s.insert(0, 10);
  s.insert(20, 10);
  EXPECT_EQ(s.num_intervals(), 2u);
  s.insert(10, 10);  // bridges both
  EXPECT_EQ(s.num_intervals(), 1u);
  EXPECT_TRUE(s.contains(0, 30));
}

TEST(IntervalSet, CoalescePrevOnly) {
  IntervalSet<> s;
  s.insert(0, 10);
  s.insert(10, 5);
  EXPECT_EQ(s.num_intervals(), 1u);
  EXPECT_TRUE(s.contains(0, 15));
}

TEST(IntervalSet, CoalesceNextOnly) {
  IntervalSet<> s;
  s.insert(10, 5);
  s.insert(5, 5);
  EXPECT_EQ(s.num_intervals(), 1u);
  EXPECT_TRUE(s.contains(5, 10));
}

TEST(IntervalSet, Intersects) {
  IntervalSet<> s;
  s.insert(10, 10);
  EXPECT_TRUE(s.intersects(15, 1));
  EXPECT_TRUE(s.intersects(5, 6));
  EXPECT_TRUE(s.intersects(19, 5));
  EXPECT_FALSE(s.intersects(20, 5));
  EXPECT_FALSE(s.intersects(0, 10));
  EXPECT_FALSE(s.intersects(15, 0));
}

TEST(IntervalSet, EraseMiddleSplits) {
  IntervalSet<> s;
  s.insert(0, 100);
  s.erase(40, 20);
  EXPECT_EQ(s.num_intervals(), 2u);
  EXPECT_EQ(s.size(), 80u);
  EXPECT_TRUE(s.contains(0, 40));
  EXPECT_TRUE(s.contains(60, 40));
  EXPECT_FALSE(s.intersects(40, 20));
}

TEST(IntervalSet, EraseEndsTrim) {
  IntervalSet<> s;
  s.insert(0, 100);
  s.erase(0, 10);
  s.erase(90, 10);
  EXPECT_EQ(s.num_intervals(), 1u);
  EXPECT_TRUE(s.contains(10, 80));
}

TEST(IntervalSet, EraseWholeInterval) {
  IntervalSet<> s;
  s.insert(5, 5);
  s.insert(20, 5);
  s.erase(5, 5);
  EXPECT_EQ(s.num_intervals(), 1u);
  EXPECT_FALSE(s.intersects(5, 5));
}

TEST(IntervalSet, UnionInsertOverlapping) {
  IntervalSet<> s;
  s.insert(10, 10);
  s.union_insert(5, 20);  // covers [5,25), overlapping [10,20)
  EXPECT_EQ(s.num_intervals(), 1u);
  EXPECT_EQ(s.size(), 20u);
  EXPECT_TRUE(s.contains(5, 20));
}

TEST(IntervalSet, UnionInsertSpanningGaps) {
  IntervalSet<> s;
  s.insert(0, 5);
  s.insert(10, 5);
  s.insert(20, 5);
  s.union_insert(3, 20);  // [3,23)
  EXPECT_EQ(s.num_intervals(), 1u);
  EXPECT_TRUE(s.contains(0, 25));
}

TEST(IntervalSet, FindFirstFit) {
  IntervalSet<> s;
  s.insert(0, 3);
  s.insert(10, 8);
  s.insert(30, 100);
  auto it = s.find_first_fit(5);
  ASSERT_NE(it, s.end());
  EXPECT_EQ(it->first, 10u);
  it = s.find_first_fit(50);
  ASSERT_NE(it, s.end());
  EXPECT_EQ(it->first, 30u);
  EXPECT_EQ(s.find_first_fit(1000), s.end());
}

// Property test: interleaved alloc/free against a reference bitmap.
TEST(IntervalSet, RandomizedAgainstBitmap) {
  constexpr std::size_t kSpace = 2048;
  IntervalSet<> s;
  std::vector<bool> ref(kSpace, false);
  std::mt19937 rng(1234);

  for (int iter = 0; iter < 3000; ++iter) {
    const std::size_t off = rng() % kSpace;
    const std::size_t len = 1 + rng() % 32;
    if (off + len > kSpace) continue;
    bool any = false, all = true;
    for (std::size_t i = off; i < off + len; ++i) {
      any |= ref[i];
      all &= ref[i];
    }
    EXPECT_EQ(s.intersects(off, len), any) << off << "+" << len;
    EXPECT_EQ(s.contains(off, len), all);
    if (rng() % 2 == 0) {
      if (!any) {
        s.insert(off, len);
        for (std::size_t i = off; i < off + len; ++i) ref[i] = true;
      }
    } else if (all) {
      s.erase(off, len);
      for (std::size_t i = off; i < off + len; ++i) ref[i] = false;
    }
  }
  std::size_t expect_size = 0;
  for (bool b : ref) expect_size += b ? 1 : 0;
  EXPECT_EQ(s.size(), expect_size);
}

}  // namespace
}  // namespace doceph
