#include "common/encoding.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace doceph {
namespace {

template <typename T>
T round_trip(const T& in) {
  const BufferList bl = encode_to_bl(in);
  T out{};
  EXPECT_TRUE(decode_from_bl(out, bl));
  return out;
}

TEST(Encoding, IntegersLittleEndianFixedWidth) {
  BufferList bl;
  encode(static_cast<std::uint32_t>(0x01020304), bl);
  EXPECT_EQ(bl.length(), 4u);
  const std::string raw = bl.to_string();
  EXPECT_EQ(raw[0], '\x04');
  EXPECT_EQ(raw[3], '\x01');
}

TEST(Encoding, IntegerRoundTrips) {
  EXPECT_EQ(round_trip<std::uint8_t>(0xAB), 0xAB);
  EXPECT_EQ(round_trip<std::uint16_t>(0xBEEF), 0xBEEF);
  EXPECT_EQ(round_trip<std::uint32_t>(0xDEADBEEF), 0xDEADBEEFu);
  EXPECT_EQ(round_trip<std::uint64_t>(0x0123456789ABCDEFull), 0x0123456789ABCDEFull);
  EXPECT_EQ(round_trip<std::int64_t>(-42), -42);
  EXPECT_EQ(round_trip<std::int32_t>(-1), -1);
}

TEST(Encoding, BoolAndDouble) {
  EXPECT_EQ(round_trip(true), true);
  EXPECT_EQ(round_trip(false), false);
  EXPECT_DOUBLE_EQ(round_trip(3.14159), 3.14159);
  EXPECT_DOUBLE_EQ(round_trip(-0.0), -0.0);
}

enum class Color : std::uint8_t { red = 1, green = 2 };

TEST(Encoding, Enum) {
  BufferList bl = encode_to_bl(Color::green);
  EXPECT_EQ(bl.length(), 1u);
  EXPECT_EQ(round_trip(Color::red), Color::red);
}

TEST(Encoding, Strings) {
  EXPECT_EQ(round_trip(std::string("")), "");
  EXPECT_EQ(round_trip(std::string("hello")), "hello");
  EXPECT_EQ(round_trip(std::string(100000, 'z')), std::string(100000, 'z'));
}

TEST(Encoding, NestedBufferListZeroCopyDecode) {
  BufferList payload;
  payload.append(std::string(4096, 'p'));
  BufferList bl;
  encode(payload, bl);
  encode(std::string("tail"), bl);

  BufferList::Cursor cur(bl);
  BufferList out;
  ASSERT_TRUE(decode(out, cur));
  EXPECT_EQ(out.length(), 4096u);
  std::string tail;
  ASSERT_TRUE(decode(tail, cur));
  EXPECT_EQ(tail, "tail");
}

TEST(Encoding, Containers) {
  const std::vector<std::uint32_t> v{1, 2, 3, 0xFFFFFFFF};
  EXPECT_EQ(round_trip(v), v);

  const std::map<std::string, std::uint64_t> m{{"a", 1}, {"bb", 22}};
  EXPECT_EQ(round_trip(m), m);

  const std::vector<std::string> empty;
  EXPECT_EQ(round_trip(empty), empty);

  const std::pair<std::string, std::uint8_t> p{"k", 9};
  EXPECT_EQ(round_trip(p), p);

  std::optional<std::string> some = "present";
  EXPECT_EQ(round_trip(some), some);
  std::optional<std::string> none;
  EXPECT_EQ(round_trip(none), none);
}

struct Point {
  std::int32_t x = 0, y = 0;
  void encode(BufferList& bl) const {
    doceph::encode(x, bl);
    doceph::encode(y, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(x, cur) && doceph::decode(y, cur);
  }
  friend bool operator==(const Point&, const Point&) = default;
};

TEST(Encoding, MemberEncodableStruct) {
  const Point p{-3, 99};
  EXPECT_EQ(round_trip(p), p);
  const std::vector<Point> pts{{1, 2}, {3, 4}};
  EXPECT_EQ(round_trip(pts), pts);
  const std::map<std::string, Point> named{{"origin", {0, 0}}};
  EXPECT_EQ(round_trip(named), named);
}

TEST(Encoding, TruncatedInputFailsCleanly) {
  BufferList bl = encode_to_bl(std::string("hello world"));
  for (std::size_t cut = 0; cut < bl.length(); ++cut) {
    BufferList trunc = bl.substr(0, cut);
    std::string out;
    EXPECT_FALSE(decode_from_bl(out, trunc)) << "cut at " << cut;
  }
}

TEST(Encoding, HostileVectorLengthRejected) {
  // A length prefix far beyond the remaining bytes must not allocate wildly.
  BufferList bl;
  encode(static_cast<std::uint32_t>(0x7FFFFFFF), bl);
  std::vector<std::uint64_t> v;
  EXPECT_FALSE(decode_from_bl(v, bl));
}

TEST(Encoding, TruncatedStructFails) {
  BufferList bl = encode_to_bl(Point{5, 6});
  BufferList trunc = bl.substr(0, 6);
  Point p;
  EXPECT_FALSE(decode_from_bl(p, trunc));
}

TEST(Encoding, SequentialFieldsDecodeInOrder) {
  BufferList bl;
  encode(std::uint16_t{7}, bl);
  encode(std::string("mid"), bl);
  encode(std::uint64_t{1ull << 40}, bl);

  BufferList::Cursor cur(bl);
  std::uint16_t a = 0;
  std::string b;
  std::uint64_t c = 0;
  ASSERT_TRUE(decode(a, cur));
  ASSERT_TRUE(decode(b, cur));
  ASSERT_TRUE(decode(c, cur));
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, "mid");
  EXPECT_EQ(c, 1ull << 40);
  EXPECT_EQ(cur.remaining(), 0u);
}

}  // namespace
}  // namespace doceph
