#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace doceph {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Errc::ok);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s(Errc::not_found, "object foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::not_found);
  EXPECT_EQ(s.message(), "object foo");
  EXPECT_EQ(s.to_string(), "not_found: object foo");
}

TEST(Status, ImplicitFromErrc) {
  const Status s = Errc::too_large;
  EXPECT_EQ(s.code(), Errc::too_large);
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status(Errc::busy, "a"), Status(Errc::busy, "b"));
  EXPECT_FALSE(Status(Errc::busy) == Status(Errc::io_error));
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(Errc::range_error); ++c) {
    EXPECT_NE(errc_name(static_cast<Errc>(c)), "unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  const Result<int> r = Status(Errc::io_error, "disk gone");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r);
  EXPECT_EQ(r.status().code(), Errc::io_error);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ImplicitFromErrc) {
  const Result<std::string> r = Errc::timed_out;
  EXPECT_EQ(r.status().code(), Errc::timed_out);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace doceph
