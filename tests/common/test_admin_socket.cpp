#include "common/admin_socket.h"

#include <gtest/gtest.h>

namespace doceph {
namespace {

TEST(AdminSocket, RegisterAndExecute) {
  AdminSocket admin;
  EXPECT_TRUE(admin.register_command("perf dump", "dump counters",
                                     [](const auto&) { return "{\"ok\":1}"; }));
  EXPECT_TRUE(admin.has_command("perf dump"));

  const auto r = admin.execute("perf dump");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "{\"ok\":1}");
}

TEST(AdminSocket, DuplicateRegistrationRefused) {
  AdminSocket admin;
  EXPECT_TRUE(admin.register_command("cmd", "first",
                                     [](const auto&) { return "first"; }));
  EXPECT_FALSE(admin.register_command("cmd", "second",
                                      [](const auto&) { return "second"; }));
  const auto r = admin.execute("cmd");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "first");
}

TEST(AdminSocket, LongestPrefixWinsAndSurplusTokensAreArgs) {
  AdminSocket admin;
  admin.register_command("perf", "generic", [](const auto&) { return "generic"; });
  admin.register_command("perf dump", "specific", [](const auto& args) {
    std::string out = "dump";
    for (const auto& a : args) out += ":" + a;
    return out;
  });

  auto r = admin.execute("perf dump msgr osd");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "dump:msgr:osd");

  r = admin.execute("perf reset");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "generic");
}

TEST(AdminSocket, ErrorsOnEmptyAndUnknown) {
  AdminSocket admin;
  admin.register_command("known", "", [](const auto&) { return "x"; });

  auto r = admin.execute("");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Errc::invalid_argument);

  r = admin.execute("unknown command");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Errc::not_found);
}

TEST(AdminSocket, UnregisterRemovesCommand) {
  AdminSocket admin;
  admin.register_command("a", "", [](const auto&) { return "a"; });
  admin.register_command("b", "", [](const auto&) { return "b"; });

  admin.unregister_command("a");
  EXPECT_FALSE(admin.has_command("a"));
  EXPECT_TRUE(admin.has_command("b"));
  EXPECT_FALSE(admin.execute("a").ok());

  admin.unregister_all();
  EXPECT_FALSE(admin.has_command("b"));
}

TEST(AdminSocket, HelpListsCommands) {
  AdminSocket admin;
  admin.register_command("perf dump", "dump all blocks", [](const auto&) {
    return "{}";
  });
  const std::string help = admin.help_json();
  EXPECT_NE(help.find("\"perf dump\""), std::string::npos);
  EXPECT_NE(help.find("dump all blocks"), std::string::npos);
}

TEST(AdminSocket, HandlerMayReenterRegistry) {
  // Handlers run outside the registry lock, so a handler can query the
  // socket it is registered on without deadlocking.
  AdminSocket admin;
  admin.register_command("outer", "", [&admin](const auto&) {
    return admin.has_command("outer") ? "reentered" : "missing";
  });
  const auto r = admin.execute("outer");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "reentered");
}

}  // namespace
}  // namespace doceph
