#include "common/fault.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace doceph::fault {
namespace {

TEST(FaultRegistry, UnarmedIsFree) {
  FaultRegistry reg(1);
  EXPECT_FALSE(reg.any_armed());
  EXPECT_FALSE(reg.should_fire("net.drop", 0));
  EXPECT_EQ(reg.hits("net.drop"), 0u);  // unarmed points don't even count
  EXPECT_TRUE(reg.firing_log().empty());
}

TEST(FaultRegistry, OneShotAtHit) {
  FaultRegistry reg(1);
  FaultSpec spec;
  spec.fire_at_hit = 3;
  spec.count = 1;
  reg.set("bdev.io_error", spec);
  EXPECT_TRUE(reg.any_armed());
  EXPECT_FALSE(reg.should_fire("bdev.io_error", 0));
  EXPECT_FALSE(reg.should_fire("bdev.io_error", 0));
  EXPECT_TRUE(reg.should_fire("bdev.io_error", 0));
  EXPECT_FALSE(reg.should_fire("bdev.io_error", 0));
  EXPECT_EQ(reg.hits("bdev.io_error"), 4u);
  EXPECT_EQ(reg.fires("bdev.io_error"), 1u);
  ASSERT_EQ(reg.firing_log().size(), 1u);
  EXPECT_EQ(reg.firing_log()[0], "bdev.io_error#3");
}

TEST(FaultRegistry, FireAtTimeRespectsBudget) {
  FaultRegistry reg(1);
  FaultSpec spec;
  spec.fire_at_time = 1000;
  spec.count = 2;
  reg.set("osd.crash", spec);
  EXPECT_FALSE(reg.should_fire("osd.crash", 999));
  EXPECT_TRUE(reg.should_fire("osd.crash", 1000));
  EXPECT_TRUE(reg.should_fire("osd.crash", 2000));
  EXPECT_FALSE(reg.should_fire("osd.crash", 3000));  // budget exhausted
}

TEST(FaultRegistry, ForceNextMergesIntoExistingEntry) {
  FaultRegistry reg(1);
  FaultSpec spec;
  spec.probability = 0.0;
  reg.set("doca.dma_error", spec);
  reg.fire_next("doca.dma_error", 2);
  EXPECT_TRUE(reg.should_fire("doca.dma_error", 0));
  EXPECT_TRUE(reg.should_fire("doca.dma_error", 0));
  EXPECT_FALSE(reg.should_fire("doca.dma_error", 0));
}

TEST(FaultRegistry, MatchScopesToSubstring) {
  FaultRegistry reg(1);
  FaultSpec spec;
  spec.force_next = 100;
  spec.match = "osd.1";
  reg.set("osd.crash", spec);
  EXPECT_FALSE(reg.should_fire("osd.crash", 0, "osd.0"));
  EXPECT_TRUE(reg.should_fire("osd.crash", 0, "osd.1"));
  EXPECT_FALSE(reg.should_fire("osd.crash", 0, "osd.2"));
  auto log = reg.firing_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "osd.crash@osd.1#1");
}

TEST(FaultRegistry, DelayPropagates) {
  FaultRegistry reg(1);
  FaultSpec spec;
  spec.force_next = 1;
  spec.delay_ns = 5'000'000;
  reg.set("bdev.latency_spike", spec);
  FaultHit h = reg.hit("bdev.latency_spike", 0);
  EXPECT_TRUE(h.fired);
  EXPECT_EQ(h.delay_ns, 5'000'000u);
}

// The heart of the determinism contract: same seed, same hit count =>
// identical firing decisions and identical log, regardless of timing.
TEST(FaultRegistry, ProbabilisticStreamIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    FaultRegistry reg(seed);
    FaultSpec spec;
    spec.probability = 0.3;
    reg.set("net.drop", spec);
    std::vector<bool> fired;
    fired.reserve(200);
    for (int i = 0; i < 200; ++i) fired.push_back(reg.should_fire("net.drop", i * 7));
    return std::make_pair(fired, reg.firing_log());
  };
  auto [a_fired, a_log] = run(42);
  auto [b_fired, b_log] = run(42);
  auto [c_fired, c_log] = run(43);
  EXPECT_EQ(a_fired, b_fired);
  EXPECT_EQ(a_log, b_log);
  EXPECT_NE(a_fired, c_fired);  // different seed perturbs the stream
  // ~30% of 200 hits should fire; allow a generous band.
  auto fires = static_cast<int>(a_log.size());
  EXPECT_GT(fires, 30);
  EXPECT_LT(fires, 90);
}

// Concurrent hits from many threads must neither race nor change the
// total number of fires (the per-hit decisions are serialized).
TEST(FaultRegistry, ConcurrentHitsAreSerialized) {
  FaultRegistry reg(7);
  FaultSpec spec;
  spec.probability = 0.5;
  reg.set("net.drop", spec);
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kHitsPerThread; ++i) (void)reg.should_fire("net.drop", 0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.hits("net.drop"), static_cast<std::uint64_t>(kThreads * kHitsPerThread));
  EXPECT_EQ(reg.fires("net.drop"), reg.firing_log().size());
}

TEST(FaultRegistry, AdminSetListClear) {
  FaultRegistry reg(1);
  std::string r = reg.admin_command({"set", "net.drop", "p=0.25", "count=10", "match=a>b"});
  EXPECT_NE(r.find("armed net.drop"), std::string::npos);
  std::string listed = reg.admin_command({"list"});
  EXPECT_NE(listed.find("\"point\":\"net.drop\""), std::string::npos);
  EXPECT_NE(listed.find("\"probability\":0.25"), std::string::npos);
  EXPECT_NE(listed.find("\"match\":\"a>b\""), std::string::npos);
  r = reg.admin_command({"clear", "net.drop"});
  EXPECT_NE(r.find("cleared net.drop"), std::string::npos);
  EXPECT_FALSE(reg.any_armed());
  // Malformed input is an error reply, not a crash.
  EXPECT_NE(reg.admin_command({"set"}).find("error"), std::string::npos);
  EXPECT_NE(reg.admin_command({"set", "x", "nonsense"}).find("error"), std::string::npos);
  EXPECT_NE(reg.admin_command({"bogus"}).find("error"), std::string::npos);
  EXPECT_NE(reg.admin_command({}).find("error"), std::string::npos);
}

TEST(FaultRegistry, SetReplacesEntryWithSameMatch) {
  FaultRegistry reg(1);
  FaultSpec a;
  a.force_next = 5;
  reg.set("net.drop", a);
  FaultSpec b;  // replace: no triggers at all
  reg.set("net.drop", b);
  EXPECT_FALSE(reg.should_fire("net.drop", 0));
}

}  // namespace
}  // namespace doceph::fault
