#include "common/logger.h"

#include <gtest/gtest.h>

namespace doceph {
namespace {

// The point of the ternary/voidify expansion: DLOG inside an unbraced
// `if` must not capture the following `else`. With the old
// `if (enabled) Record(...)` expansion this function would bind the
// `else` to the macro's hidden `if` and return the wrong branch.
int classify(bool important) {
  if (important)
    DLOG(info, "test") << "important path";
  else
    return 1;
  return 2;
}

TEST(DLog, DangleElseBindsToOuterIf) {
  log::set_level(log::Level::off);
  EXPECT_EQ(classify(true), 2);
  EXPECT_EQ(classify(false), 1);
}

TEST(DLog, DisabledLevelSkipsFormatting) {
  log::set_level(log::Level::off);
  int evaluations = 0;
  const auto touch = [&evaluations] {
    ++evaluations;
    return "x";
  };
  DLOG(debug, "test") << touch();
  EXPECT_EQ(evaluations, 0);

  log::set_level(log::Level::trace);
  testing::internal::CaptureStderr();
  DLOG(debug, "test") << touch();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(err.find("x"), std::string::npos);
  log::set_level(log::Level::warn);
}

TEST(DLog, UsableAsSoleStatementOfLoop) {
  log::set_level(log::Level::off);
  // Compiles as a single statement in every statement position.
  for (int i = 0; i < 3; ++i) DLOG(info, "test") << i;
  int n = 0;
  while (n++ < 2) DLOG(info, "test") << n;
  if (n > 0) DLOG(info, "test") << n;
  SUCCEED();
}

}  // namespace
}  // namespace doceph
