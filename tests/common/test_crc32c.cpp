#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace doceph {
namespace {

// Reference vectors for CRC-32C (Castagnoli), as used by iSCSI/ext4/Ceph.
TEST(Crc32c, KnownVectors) {
  // RFC 3720 B.4 test: 32 bytes of zeros.
  std::vector<unsigned char> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  // 32 bytes of 0xFF.
  std::vector<unsigned char> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  // Ascending 0..31.
  std::vector<unsigned char> asc(32);
  for (int i = 0; i < 32; ++i) asc[static_cast<std::size_t>(i)] = static_cast<unsigned char>(i);
  EXPECT_EQ(crc32c(asc.data(), asc.size()), 0x46DD794Eu);

  // "123456789" — the classic check value.
  const std::string digits = "123456789";
  EXPECT_EQ(crc32c(digits.data(), digits.size()), 0xE3069283u);
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
  EXPECT_EQ(crc32c(0xDEADBEEF, nullptr, 0), 0xDEADBEEFu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = crc32c(data.data(), split);
    crc = crc32c(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, UnalignedStartMatches) {
  // Ensure the slice-by-8 alignment preamble is correct.
  std::vector<unsigned char> buf(64 + 8);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<unsigned char>(i * 7 + 3);
  const std::uint32_t ref = crc32c(buf.data(), 64);
  for (std::size_t off = 1; off < 8; ++off) {
    std::vector<unsigned char> copy(buf.begin() + static_cast<long>(off),
                                    buf.begin() + static_cast<long>(off) + 64);
    std::uint32_t a = crc32c(copy.data(), 64);
    std::uint32_t b = crc32c(buf.data() + off, 64);
    EXPECT_EQ(a, b) << "offset " << off;
    (void)ref;
  }
}

TEST(Crc32c, DetectsSingleBitFlip) {
  std::vector<unsigned char> buf(1024, 0x5A);
  const std::uint32_t ref = crc32c(buf.data(), buf.size());
  for (std::size_t bit : {0u, 1u, 511u * 8u, 1023u * 8u + 7u}) {
    buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    EXPECT_NE(crc32c(buf.data(), buf.size()), ref);
    buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  }
}

}  // namespace
}  // namespace doceph
