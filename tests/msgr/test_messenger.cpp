#include "msgr/messenger.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "msgr/messages.h"
#include "sim/env.h"

namespace doceph::msgr {
namespace {

using namespace doceph::sim;

/// Dispatcher that records everything it receives and can auto-reply.
class Recorder : public Dispatcher {
 public:
  explicit Recorder(Env& env) : env_(env), cv_(env.keeper()) {}

  void ms_dispatch(const MessageRef& m) override {
    {
      const std::lock_guard<std::mutex> lk(m_);
      msgs_.push_back(m);
    }
    if (auto_reply_ && m->type() == MsgType::osd_op) {
      auto reply = std::make_shared<MOSDOpReply>();
      reply->tid = m->tid;
      reply->result = 0;
      reply->data = m->data;  // echo bulk payload back
      m->connection->send_message(reply);
    }
    cv_.notify_all();
  }

  void ms_handle_reset(const ConnectionRef&) override {
    const std::lock_guard<std::mutex> lk(m_);
    resets_++;
    cv_.notify_all();
  }

  /// Wait (in sim time) until n messages arrived.
  void wait_count(std::size_t n) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return msgs_.size() >= n; });
  }
  void wait_reset() {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return resets_ > 0; });
  }

  std::vector<MessageRef> messages() {
    const std::lock_guard<std::mutex> lk(m_);
    return msgs_;
  }
  int resets() {
    const std::lock_guard<std::mutex> lk(m_);
    return resets_;
  }
  void enable_auto_reply() { auto_reply_ = true; }

 private:
  Env& env_;
  std::mutex m_;
  CondVar cv_;
  std::vector<MessageRef> msgs_;
  int resets_ = 0;
  bool auto_reply_ = false;
};

struct MsgrFixture {
  Env env;
  net::Fabric fabric{env};
  net::NetNode& na;
  net::NetNode& nb;
  Messenger ma;
  Messenger mb;
  Recorder ra{env};
  Recorder rb{env};

  MsgrFixture()
      : na(fabric.add_node("a")),
        nb(fabric.add_node("b")),
        ma(env, fabric, na, nullptr, "client.1"),
        mb(env, fabric, nb, nullptr, "osd.0") {
    ma.set_dispatcher(&ra);
    mb.set_dispatcher(&rb);
    EXPECT_TRUE(mb.bind(6800).ok());
    ma.start();
    mb.start();
  }
  ~MsgrFixture() {  // NOLINT(bugprone-exception-escape): test teardown; a throw fails the binary loudly, which is fine
    ma.shutdown();
    mb.shutdown();
  }
};

MessageRef make_op(std::string object, std::string payload, std::uint64_t tid) {
  auto op = std::make_shared<MOSDOp>();
  op->op = OsdOpType::write_full;
  op->object = std::move(object);
  op->tid = tid;
  op->data = BufferList::copy_of(payload);
  return op;
}

TEST(Messenger, RoundTripSmallMessage) {
  MsgrFixture f;
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto con = f.ma.get_connection(f.mb.addr());
    ASSERT_NE(con, nullptr);
    con->send_message(make_op("obj1", "payload-bytes", 42));
    f.rb.wait_count(1);
  });
  driver.join();
  auto msgs = f.rb.messages();
  ASSERT_EQ(msgs.size(), 1u);
  auto* op = dynamic_cast<MOSDOp*>(msgs[0].get());
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->object, "obj1");
  EXPECT_EQ(op->tid, 42u);
  EXPECT_EQ(op->data.to_string(), "payload-bytes");
  EXPECT_EQ(op->src, f.ma.addr());
  EXPECT_NE(op->connection, nullptr);
}

TEST(Messenger, ReplyTravelsBackOnSameConnection) {
  MsgrFixture f;
  f.rb.enable_auto_reply();
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto con = f.ma.get_connection(f.mb.addr());
    ASSERT_NE(con, nullptr);
    con->send_message(make_op("obj", "echo-me", 7));
    f.ra.wait_count(1);
  });
  driver.join();
  auto msgs = f.ra.messages();
  ASSERT_EQ(msgs.size(), 1u);
  auto* reply = dynamic_cast<MOSDOpReply*>(msgs[0].get());
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->tid, 7u);
  EXPECT_EQ(reply->data.to_string(), "echo-me");
}

TEST(Messenger, ManyMessagesPreserveOrder) {
  MsgrFixture f;
  constexpr int kCount = 200;
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto con = f.ma.get_connection(f.mb.addr());
    ASSERT_NE(con, nullptr);
    for (int i = 0; i < kCount; ++i)
      con->send_message(make_op("obj" + std::to_string(i), "x", static_cast<std::uint64_t>(i)));
    f.rb.wait_count(kCount);
  });
  driver.join();
  auto msgs = f.rb.messages();
  ASSERT_EQ(msgs.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(msgs[static_cast<std::size_t>(i)]->tid, static_cast<std::uint64_t>(i));
    EXPECT_EQ(msgs[static_cast<std::size_t>(i)]->seq, static_cast<std::uint64_t>(i + 1));
  }
}

TEST(Messenger, LargeDataPayloadIntact) {
  MsgrFixture f;
  std::string big(6 << 20, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i * 31 + 7);
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto con = f.ma.get_connection(f.mb.addr());
    ASSERT_NE(con, nullptr);
    con->send_message(make_op("big", big, 1));
    f.rb.wait_count(1);
  });
  driver.join();
  auto msgs = f.rb.messages();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0]->data.length(), big.size());
  EXPECT_EQ(msgs[0]->data.to_string(), big);
}

TEST(Messenger, GetConnectionCachesByPeer) {
  MsgrFixture f;
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto c1 = f.ma.get_connection(f.mb.addr());
    auto c2 = f.ma.get_connection(f.mb.addr());
    EXPECT_EQ(c1.get(), c2.get());
  });
  driver.join();
}

TEST(Messenger, ConnectToUnboundPeerReturnsNull) {
  MsgrFixture f;
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto con = f.ma.get_connection(net::Address{f.nb.id(), 9999});
    EXPECT_EQ(con, nullptr);
  });
  driver.join();
}

TEST(Messenger, MarkDownResetsPeer) {
  MsgrFixture f;
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto con = f.ma.get_connection(f.mb.addr());
    ASSERT_NE(con, nullptr);
    con->send_message(make_op("o", "x", 1));
    f.rb.wait_count(1);
    con->mark_down();
    f.rb.wait_reset();
  });
  driver.join();
  EXPECT_GE(f.rb.resets(), 1);
}

TEST(Messenger, BidirectionalTraffic) {
  MsgrFixture f;
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto con = f.ma.get_connection(f.mb.addr());
    ASSERT_NE(con, nullptr);
    con->send_message(make_op("fwd", "a", 1));
    f.rb.wait_count(1);
    // B replies on the connection it received from.
    auto msgs = f.rb.messages();
    auto pong = std::make_shared<MOSDPing>();
    pong->from_osd = 0;
    msgs[0]->connection->send_message(pong);
    f.ra.wait_count(1);
  });
  driver.join();
  ASSERT_EQ(f.ra.messages().size(), 1u);
  EXPECT_EQ(f.ra.messages()[0]->type(), MsgType::osd_ping);
}

TEST(Messenger, MessengerWorkChargesDomain) {
  Env env;
  net::Fabric fabric{env};
  auto& na = fabric.add_node("a");
  auto& nb = fabric.add_node("b");
  CpuDomain host(env.keeper(), "host", 4, 1.0);
  Messenger ma(env, fabric, na, nullptr, "client.1");
  Messenger mb(env, fabric, nb, &host, "osd.0");
  Recorder ra{env}, rb{env};
  ma.set_dispatcher(&ra);
  mb.set_dispatcher(&rb);
  ASSERT_TRUE(mb.bind(6800).ok());
  ma.start();
  mb.start();
  Thread driver = env.spawn("driver", nullptr, [&] {
    auto con = ma.get_connection(mb.addr());
    ASSERT_NE(con, nullptr);
    con->send_message(make_op("obj", std::string(1 << 20, 'q'), 1));
    rb.wait_count(1);
  });
  driver.join();
  // Receiver-side decode + crc + socket stack ran on "msgr-worker-*@osd.0"
  // threads bound to the host domain.
  EXPECT_GT(env.stats().class_cpu_ns(ThreadClass::messenger), 0u);
  EXPECT_GT(host.busy_ns(), 0u);
  ma.shutdown();
  mb.shutdown();
}

TEST(Messenger, AllMessageTypesRoundTripThroughFactory) {
  // Exercise encode -> decode via the factory for every registered type.
  for (std::uint16_t t = 1; t <= 14; ++t) {
    const auto type = static_cast<MsgType>(t);
    MessageRef m = create_message(type);
    ASSERT_NE(m, nullptr) << "type " << t;
    EXPECT_EQ(m->type(), type);
    BufferList front;
    m->encode_payload(front);
    MessageRef m2 = create_message(type);
    BufferList::Cursor cur(front);
    EXPECT_TRUE(m2->decode_payload(cur)) << msg_type_name(type);
    EXPECT_EQ(cur.remaining(), 0u) << msg_type_name(type);
  }
  EXPECT_EQ(create_message(MsgType::none), nullptr);
  EXPECT_EQ(create_message(static_cast<MsgType>(999)), nullptr);
}

}  // namespace
}  // namespace doceph::msgr
