// Messenger robustness: malformed banners, corrupted frames (crc rejection),
// and property-style sweeps of message sizes across the wire.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "msgr/messages.h"
#include "msgr/messenger.h"

namespace doceph::msgr {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

struct Sink : Dispatcher {
  explicit Sink(Env& env) : cv(env.keeper()) {}
  std::mutex m;
  CondVar cv;
  std::vector<MessageRef> msgs;
  int resets = 0;
  void ms_dispatch(const MessageRef& msg) override {
    const std::lock_guard<std::mutex> lk(m);
    msgs.push_back(msg);
    cv.notify_all();
  }
  void ms_handle_reset(const ConnectionRef&) override {
    const std::lock_guard<std::mutex> lk(m);
    ++resets;
    cv.notify_all();
  }
};

struct Fixture {
  Env env;
  net::Fabric fabric{env};
  net::NetNode& na;
  net::NetNode& nb;
  Messenger server;
  Sink sink{env};

  Fixture()
      : na(fabric.add_node("a")),
        nb(fabric.add_node("b")),
        server(env, fabric, nb, nullptr, "osd.0") {
    server.set_dispatcher(&sink);
    EXPECT_TRUE(server.bind(6800).ok());
    server.start();
  }
  ~Fixture() { server.shutdown(); }  // NOLINT(bugprone-exception-escape): test teardown; a throw fails the binary loudly, which is fine
};

TEST(MsgrRobustness, GarbageBannerResetsConnection) {
  Fixture f;
  run_sim(f.env, [&] {
    auto sock = f.fabric.connect(f.na, {f.nb.id(), 6800});
    ASSERT_TRUE(sock.ok());
    BufferList garbage = BufferList::copy_of("this is not a doceph banner!!");
    (void)(*sock)->send(garbage);
    std::unique_lock<std::mutex> lk(f.sink.m);
    f.sink.cv.wait(lk, [&] { return f.sink.resets > 0; });
    EXPECT_TRUE(f.sink.msgs.empty());
  });
}

TEST(MsgrRobustness, CorruptedPayloadRejectedByCrc) {
  Fixture f;
  run_sim(f.env, [&] {
    // Handcraft a valid banner, then a frame whose data is bit-flipped
    // relative to its footer crc.
    auto sock_r = f.fabric.connect(f.na, {f.nb.id(), 6800});
    ASSERT_TRUE(sock_r.ok());
    auto sock = *sock_r;

    Messenger client(f.env, f.fabric, f.na, nullptr, "client.raw");
    // Use a real messenger to produce a valid wire image, then corrupt it.
    // Simpler: drive a legitimate connection and a corrupted raw one.
    Sink client_sink(f.env);
    client.set_dispatcher(&client_sink);
    client.start();
    auto con = client.get_connection(f.server.addr());
    ASSERT_NE(con, nullptr);
    auto op = std::make_shared<MOSDOp>();
    op->object = "fine";
    op->data = BufferList::copy_of(pattern(4096));
    con->send_message(op);
    {
      std::unique_lock<std::mutex> lk(f.sink.m);
      f.sink.cv.wait(lk, [&] { return !f.sink.msgs.empty(); });
    }

    // Raw connection: valid banner + garbage frame -> crc/parse failure.
    BufferList banner;
    encode(std::uint32_t{0xD0CE0001}, banner);
    net::Address fake{f.na.id(), 12345};
    fake.encode(banner);
    (void)sock->send(banner);
    BufferList frame;
    frame.append_zero(200);  // "header" of zeros: unknown type / bad layout
    (void)sock->send(frame);

    std::unique_lock<std::mutex> lk(f.sink.m);
    f.sink.cv.wait(lk, [&] { return f.sink.resets > 0; });
    EXPECT_EQ(f.sink.msgs.size(), 1u);  // only the legitimate message landed
    client.shutdown();
  });
}

class MsgrSizeSweep : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, MsgrSizeSweep,
                         ::testing::Values(0u, 1u, 4096u, 65536u, 1u << 20,
                                           (4u << 20) + 13));

TEST_P(MsgrSizeSweep, PayloadIntegrityAcrossTheWire) {
  Fixture f;
  const std::string payload = pattern(GetParam(), 42);
  run_sim(f.env, [&] {
    Messenger client(f.env, f.fabric, f.na, nullptr, "client.1");
    Sink client_sink(f.env);
    client.set_dispatcher(&client_sink);
    client.start();
    auto con = client.get_connection(f.server.addr());
    ASSERT_NE(con, nullptr);
    auto op = std::make_shared<MOSDOp>();
    op->object = "sweep";
    op->tid = 9;
    op->data = BufferList::copy_of(payload);
    con->send_message(op);
    {
      std::unique_lock<std::mutex> lk(f.sink.m);
      f.sink.cv.wait(lk, [&] { return !f.sink.msgs.empty(); });
    }
    EXPECT_EQ(f.sink.msgs[0]->data.to_string(), payload);
    EXPECT_EQ(f.sink.msgs[0]->tid, 9u);
    client.shutdown();
  });
}

TEST(MsgrRobustness, ManyConnectionsSpreadAcrossWorkers) {
  Fixture f;
  run_sim(f.env, [&] {
    std::vector<std::unique_ptr<Messenger>> clients;
    for (int i = 0; i < 6; ++i) {
      clients.push_back(std::make_unique<Messenger>(f.env, f.fabric, f.na, nullptr,
                                                    "client." + std::to_string(i)));
      clients.back()->start();
      auto con = clients.back()->get_connection(f.server.addr());
      ASSERT_NE(con, nullptr);
      auto op = std::make_shared<MOSDOp>();
      op->object = "from" + std::to_string(i);
      con->send_message(op);
    }
    {
      std::unique_lock<std::mutex> lk(f.sink.m);
      f.sink.cv.wait(lk, [&] { return f.sink.msgs.size() == 6; });
    }
    for (auto& c : clients) c->shutdown();
  });
}

}  // namespace
}  // namespace doceph::msgr
