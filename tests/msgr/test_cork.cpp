// Messenger write corking: small same-connection messages coalesce into one
// fabric send (Nagle-like), bounded by the virtual-clock cork timeout, with
// the in-order delivery contract intact.
#include <gtest/gtest.h>

#include <mutex>

#include "msgr/messages.h"
#include "msgr/messenger.h"
#include "sim/env.h"

namespace doceph::msgr {
namespace {

using namespace doceph::sim;

/// Dispatcher that records arrivals (tests/msgr/test_messenger.cpp idiom).
class Recorder : public Dispatcher {
 public:
  explicit Recorder(Env& env) : cv_(env.keeper()) {}

  void ms_dispatch(const MessageRef& m) override {
    const std::lock_guard<std::mutex> lk(m_);
    msgs_.push_back(m);
    cv_.notify_all();
  }

  void wait_count(std::size_t n) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return msgs_.size() >= n; });
  }

  std::vector<MessageRef> messages() {
    const std::lock_guard<std::mutex> lk(m_);
    return msgs_;
  }

 private:
  std::mutex m_;
  CondVar cv_;
  std::vector<MessageRef> msgs_;
};

struct CorkFixture {
  Env env;
  net::Fabric fabric{env};
  net::NetNode& na;
  net::NetNode& nb;
  Messenger ma;
  Messenger mb;
  Recorder ra{env};
  Recorder rb{env};

  explicit CorkFixture(const MessengerConfig& cfg)
      : na(fabric.add_node("a")),
        nb(fabric.add_node("b")),
        ma(env, fabric, na, nullptr, "client.1", cfg),
        mb(env, fabric, nb, nullptr, "osd.0", cfg) {
    ma.set_dispatcher(&ra);
    mb.set_dispatcher(&rb);
    EXPECT_TRUE(mb.bind(6800).ok());
    ma.start();
    mb.start();
  }
  ~CorkFixture() {  // NOLINT(bugprone-exception-escape): test teardown
    ma.shutdown();
    mb.shutdown();
  }
};

MessengerConfig corked_config() {
  MessengerConfig cfg;
  cfg.cork.enabled = true;
  return cfg;
}

MessageRef make_op(std::string object, std::string payload, std::uint64_t tid) {
  auto op = std::make_shared<MOSDOp>();
  op->op = OsdOpType::write_full;
  op->object = std::move(object);
  op->tid = tid;
  op->data = BufferList::copy_of(payload);
  return op;
}

TEST(MsgrCork, TimeoutFlushesLoneSmallMessage) {
  CorkFixture f(corked_config());
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto con = f.ma.get_connection(f.mb.addr());
    ASSERT_NE(con, nullptr);
    con->send_message(make_op("lonely", "x", 1));
    // No companions ever arrive: only the cork timer can release it.
    f.rb.wait_count(1);
  });
  driver.join();
  EXPECT_EQ(f.rb.messages().size(), 1u);
  EXPECT_GE(f.ma.counters()->get(l_msgr_cork_queued), 1u);
  EXPECT_GE(f.ma.counters()->get(l_msgr_cork_flush_timeout), 1u);
}

TEST(MsgrCork, LargeMessageBypassesTheCork) {
  CorkFixture f(corked_config());
  const std::string big(8 << 10, 'q');  // >= min_bytes: immediate doorbell
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto con = f.ma.get_connection(f.mb.addr());
    ASSERT_NE(con, nullptr);
    con->send_message(make_op("big", big, 1));
    f.rb.wait_count(1);
  });
  driver.join();
  EXPECT_EQ(f.ma.counters()->get(l_msgr_cork_queued), 0u);
  EXPECT_GE(f.ma.counters()->get(l_msgr_cork_flush_size), 1u);
}

TEST(MsgrCork, CorkedSendsPreserveOrder) {
  CorkFixture f(corked_config());
  constexpr int kCount = 100;
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto con = f.ma.get_connection(f.mb.addr());
    ASSERT_NE(con, nullptr);
    for (int i = 0; i < kCount; ++i)
      con->send_message(make_op("o" + std::to_string(i), "x",
                                static_cast<std::uint64_t>(i)));
    f.rb.wait_count(kCount);
  });
  driver.join();
  auto msgs = f.rb.messages();
  ASSERT_EQ(msgs.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(msgs[static_cast<std::size_t>(i)]->tid, static_cast<std::uint64_t>(i));
    EXPECT_EQ(msgs[static_cast<std::size_t>(i)]->seq, static_cast<std::uint64_t>(i + 1));
  }
  // A burst of tiny messages must ride shared sends: the count doorbell
  // (max_msgs) rings well before 100 individual flushes would.
  EXPECT_GT(f.ma.counters()->get(l_msgr_cork_queued), 0u);
  EXPECT_GE(f.ma.counters()->get(l_msgr_cork_flush_size), 1u);
}

TEST(MsgrCork, CorkReducesSocketSendCalls) {
  // Identical burst with and without the cork: the corked connection must
  // reach the fabric in strictly fewer send() calls.
  constexpr int kCount = 64;
  auto run_burst = [&](const MessengerConfig& cfg) {
    CorkFixture f(cfg);
    std::uint64_t calls = 0;
    Thread driver = f.env.spawn("driver", nullptr, [&] {
      auto con = f.ma.get_connection(f.mb.addr());
      ASSERT_NE(con, nullptr);
      for (int i = 0; i < kCount; ++i)
        con->send_message(make_op("o", "payload", static_cast<std::uint64_t>(i)));
      f.rb.wait_count(kCount);
      calls = con->socket_send_calls();
    });
    driver.join();
    EXPECT_EQ(f.rb.messages().size(), static_cast<std::size_t>(kCount));
    return calls;
  };
  const std::uint64_t uncorked = run_burst(MessengerConfig{});
  const std::uint64_t corked = run_burst(corked_config());
  EXPECT_GT(uncorked, 0u);
  EXPECT_LT(corked, uncorked);
}

}  // namespace
}  // namespace doceph::msgr
