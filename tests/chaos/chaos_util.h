#pragma once

// Shared scaffolding for the chaos suite: seeded scenario runner with the
// reproducibility contract (same seed => identical fault firing sequence)
// and a single-node DoCeph storage-path fixture (DPU + proxy + host
// backend) whose universe seed the test controls.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "../test_util.h"
#include "bluestore/bluestore.h"
#include "dpu/dpu_device.h"
#include "net/fabric.h"
#include "proxy/host_backend.h"
#include "proxy/proxy_object_store.h"
#include "sim/env.h"

namespace doceph::testing {

/// Run `scenario` on a sim thread of a fresh virtual-time universe seeded
/// with `seed`; return the fault firing log (the registry keeps it across
/// clear_all(), so logs survive cluster/fixture teardown).
inline std::vector<std::string> chaos_run(
    std::uint64_t seed, const std::function<void(sim::Env&)>& scenario) {
  sim::Env env(sim::TimeKeeper::Mode::virtual_time, seed);
  run_sim(env, [&] { scenario(env); });
  return env.faults().firing_log();
}

/// Universe seed for drills whose assertions hold for ANY seed: the nightly
/// chaos matrix exports DOCEPH_SEED to sweep the suite across universes;
/// without it the fallback keeps local runs deterministic. Tests that pin
/// an exact firing log must keep their literal seed instead.
inline std::uint64_t env_seed(std::uint64_t fallback) {
  const char* s = std::getenv("DOCEPH_SEED");
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoull(s, nullptr, 10);
}

/// The suite's determinism contract: two runs from one seed must produce
/// bit-identical fault firing sequences.
inline void expect_reproducible(std::uint64_t seed,
                                const std::function<void(sim::Env&)>& scenario) {
  const auto first = chaos_run(seed, scenario);
  const auto second = chaos_run(seed, scenario);
  EXPECT_FALSE(first.empty()) << "scenario fired no faults";
  EXPECT_EQ(first, second) << "same-seed chaos runs diverged";
}

/// One DoCeph storage node without the OSD on top: DPU ("dpu-0") + proxy
/// store + host BlueStore + backend. Unlike tests/proxy's fixture this
/// borrows the caller's Env so chaos scenarios pick the seed, and up()/
/// down() run inline (the scenario is already on a sim thread).
struct ChaosProxyNode {
  sim::Env& env;
  net::Fabric fabric;
  sim::CpuDomain host_cpu;
  dpu::DpuDevice dpu;
  std::unique_ptr<bluestore::BlueStore> store;
  std::unique_ptr<proxy::HostBackendService> backend;
  std::unique_ptr<proxy::ProxyObjectStore> proxy;

  static constexpr os::coll_t kColl{1, 0};

  explicit ChaosProxyNode(sim::Env& e, proxy::ProxyConfig pcfg = {})
      : env(e),
        fabric(e),
        host_cpu(e.keeper(), "host-0", 8, 1.0),
        dpu(e, fabric, "dpu-0", dpu::DpuProfile{}) {
    bluestore::BlueStoreConfig scfg;
    scfg.device.size_bytes = 4ull << 30;
    scfg.device.name = "bdev-0";
    store = std::make_unique<bluestore::BlueStore>(env, &host_cpu, scfg);
    proxy = std::make_unique<proxy::ProxyObjectStore>(env, dpu, pcfg);
    backend = std::make_unique<proxy::HostBackendService>(
        env, host_cpu, *store, dpu.host_comch(), proxy->slots().host_mmap(),
        proxy->slots().slot_size());
  }

  Status up() {
    Status st = store->mkfs();
    if (!st.ok()) return st;
    st = store->mount();
    if (!st.ok()) return st;
    st = backend->start();
    if (!st.ok()) return st;
    st = proxy->mount();
    if (!st.ok()) return st;
    os::Transaction t;
    t.create_collection(kColl);
    return commit(std::move(t));
  }

  void down() {
    (void)proxy->umount();
    (void)store->umount();
    backend->shutdown();
  }

  /// Queue a transaction and block (sim time) until the host commits it.
  Status commit(os::Transaction t) {
    std::mutex m;
    sim::CondVar cv(env.keeper());
    bool done = false;
    Status out;
    proxy->queue_transaction(std::move(t), [&](Status st) {
      const std::lock_guard<std::mutex> lk(m);
      out = st;
      done = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done; });
    return out;
  }

  Status write(const std::string& name, std::size_t bytes, unsigned seed = 7) {
    os::Transaction t;
    t.write(kColl, {1, name}, 0, BufferList::copy_of(pattern(bytes, seed)));
    return commit(std::move(t));
  }
};

}  // namespace doceph::testing
