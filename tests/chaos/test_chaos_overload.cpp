// Chaos: a DoCeph cluster is driven far past its admission bounds — 48
// writers flooding 16 KB fresh objects against an OSD op queue capped at 8
// — while a scripted osd.overload burst force-bounces a window of ops on
// top. End-to-end backpressure must degrade the run gracefully: every
// throttled op is retried and eventually commits (zero failed client ops),
// queue-depth high-water gauges stay bounded by the admission caps rather
// than the offered load, and the client's AIMD window visibly contracts.
// The throttle firing schedule is reproducible from the universe seed.
#include <gtest/gtest.h>

#include "chaos_util.h"
#include "client/rados_bench.h"
#include "cluster/cluster.h"

namespace doceph::cluster {
namespace {

using namespace doceph::sim;
using doceph::testing::run_sim;

constexpr std::size_t kQueueDepth = 8;    // OSD op-queue admission bound
constexpr std::size_t kWorkerQueue = 8;   // DPU proxy worker-queue bound
constexpr int kWriters = 48;              // offered load >> every bound
constexpr std::int64_t kBurst = 40;       // forced osd.overload bounces

ClusterConfig overload_cfg() {
  auto cfg = ClusterConfig::paper_testbed(DeployMode::doceph, NetworkKind::gbe_100,
                                          /*retain_data=*/false);
  cfg.pg_num = 8;
  cfg.osd_template.max_queue_depth = kQueueDepth;
  cfg.osd_template.max_conn_inflight = 24;
  cfg.osd_template.throttle_retry_delay = 2'000'000;  // 2 ms
  cfg.osd_template.nearfull_ratio = 0.85;
  cfg.proxy.write_workers = 2;  // two bounded queues; global depth <= 16
  cfg.proxy.max_worker_queue = kWorkerQueue;
  cfg.proxy.slot_acquire_timeout = 5'000'000'000;  // 5 s
  cfg.client.flow_control = true;
  cfg.client.cwnd_init = kWriters;  // start wide open: the first wave overloads

  // The chaos script: force-bounce the first kBurst ops to reach dispatch,
  // regardless of actual queue occupancy. Hit-indexed (force_next), not
  // time-windowed: runnable sim threads execute concurrently in real time,
  // so per-op virtual timestamps can drift by nanoseconds run-to-run and a
  // wall-clock window would shift its boundary op; the hit sequence is the
  // deterministic coordinate system.
  fault::FaultSpec burst;
  burst.force_next = kBurst;
  cfg.initial_faults = {{"osd.overload", burst}};
  return cfg;
}

void overload_scenario(Env& env) {
  Cluster cl(env, overload_cfg());
  ASSERT_TRUE(cl.start().ok());

  client::BenchConfig bcfg;
  bcfg.concurrency = kWriters;
  bcfg.object_size = 16 << 10;
  bcfg.duration = 1'500'000'000;  // 1.5 s of sustained fresh-object writes
  bcfg.prefix = "flood";
  client::RadosBench bench(cl.client(), bcfg);
  const auto res = bench.run(&cl.client_cpu());

  // Graceful degradation: the cluster sheds load by delaying, never by
  // failing — every op the bench issued eventually committed.
  EXPECT_EQ(res.failed, 0u);
  EXPECT_GT(res.ops, 0u);

  // Throttles actually fired: at minimum the forced burst, plus whatever
  // the real queue/conn bounds bounced, and the client saw every bounce.
  std::uint64_t osd_throttled = 0;
  for (int i = 0; i < cl.num_nodes(); ++i)
    osd_throttled += cl.osd(i).perf_counters()->get(osd::l_osd_op_throttled);
  EXPECT_GE(osd_throttled, static_cast<std::uint64_t>(kBurst));
  EXPECT_GE(cl.client().perf_counters()->get(client::l_client_op_throttled),
            static_cast<std::uint64_t>(kBurst));

  // Bounded queues: the op-queue high-water tracks the admission cap, not
  // the 48-writer offered load. The queue also carries repops and internal
  // completions (exempt from admission — throttling them would wedge
  // in-flight writes), and up to three messenger workers race past the
  // peek-then-enqueue check, so allow headroom above the cap — but stay
  // well under the unbounded regime's high-water (the writer count).
  for (int i = 0; i < cl.num_nodes(); ++i) {
    const auto hw = cl.osd(i).perf_counters()->get(osd::l_osd_queue_depth_hw);
    EXPECT_LE(hw, 3 * kQueueDepth) << "osd." << i;
    if (auto* p = cl.proxy_store(i)) {
      // Global depth across the two bounded worker queues, +2 for the
      // pop-to-gauge-decrement lag of each worker.
      const auto phw = p->perf_counters()->get(proxy::l_dpu_worker_queue_depth_hw);
      EXPECT_LE(phw, 2 * kWorkerQueue + 2) << "proxy." << i;
    }
  }

  // AIMD reacted: the congestion window contracted below its initial size.
  EXPECT_LT(cl.client().perf_counters()->get(client::l_client_cwnd),
            static_cast<std::uint64_t>(kWriters));

  cl.stop();
}

TEST(ChaosOverload, FloodDegradesGracefullyUnderBackpressure) {
  const auto log = doceph::testing::chaos_run(/*seed=*/7177, overload_scenario);
  // The scripted burst fired on exactly the first kBurst dispatch hits.
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kBurst));
  for (std::size_t i = 0; i < log.size(); ++i)
    EXPECT_EQ(log[i], "osd.overload#" + std::to_string(i + 1));  // hits are 1-based
}

TEST(ChaosOverload, ThrottleScheduleIsSeedReproducible) {
  doceph::testing::expect_reproducible(doceph::testing::env_seed(7177),
                                       overload_scenario);
}

}  // namespace
}  // namespace doceph::cluster
