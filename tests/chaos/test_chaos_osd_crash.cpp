// Chaos: the primary OSD of a DoCeph cluster is killed mid-bench by a
// scripted fault (and later revived the same way). The hardened client
// rides through the failover with retries, the revived OSD recovers to
// clean, and every object lands intact on both replicas. The scripted
// kill/revive schedule is reproducible from the universe seed.
#include <gtest/gtest.h>

#include "chaos_util.h"
#include "cluster/cluster.h"

namespace doceph::cluster {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

constexpr Time kCrashAt = 3'000'000'000;    // 3 s into the bench
constexpr Time kRestartAt = 8'000'000'000;  // revive 5 s later
constexpr int kObjects = 16;
constexpr std::size_t kObjBytes = 64 << 10;

ClusterConfig crash_cfg() {
  auto cfg = ClusterConfig::paper_testbed(DeployMode::doceph, NetworkKind::gbe_100,
                                          /*retain_data=*/true);
  cfg.pg_num = 8;
  cfg.osd_template.heartbeat_grace = 2'000'000'000;
  cfg.osd_template.recovery_quiesce = 500'000'000;
  cfg.osd_template.tick_interval = 250'000'000;
  cfg.client.resend_timeout = 1'000'000'000;  // re-drive silent ops quickly

  // The chaos script: kill osd.1 at t=3s, revive it at t=8s. Both specs are
  // one-shot (count=1), so each run fires exactly two faults.
  fault::FaultSpec crash;
  crash.fire_at_time = kCrashAt;
  crash.count = 1;
  crash.match = "osd.1";
  fault::FaultSpec restart;
  restart.fire_at_time = kRestartAt;
  restart.count = 1;
  restart.match = "osd.1";
  cfg.initial_faults = {{"osd.crash", crash}, {"osd.restart", restart}};
  return cfg;
}

void crash_scenario(Env& env) {
  Cluster cl(env, crash_cfg());
  ASSERT_TRUE(cl.start().ok());
  auto io = cl.client().io_ctx(1);

  // A slow sequential bench spanning the crash (t=3s) and revival (t=8s):
  // ~600 ms per lap keeps writes in flight across both transitions.
  for (int i = 0; i < kObjects; ++i) {
    const Status st = io.write_full(
        "obj" + std::to_string(i),
        BufferList::copy_of(pattern(kObjBytes, static_cast<unsigned>(i))));
    ASSERT_TRUE(st.ok()) << "obj" << i << ": " << st.to_string();
    env.keeper().sleep_for(600'000'000);
  }

  // The kill actually happened mid-bench and the MON saw it.
  EXPECT_GT(env.now(), kRestartAt);
  EXPECT_GE(cl.client().perf_counters()->get(client::l_client_op_retry), 1u);

  // The revived OSD rejoins the map and recovers to clean.
  while (!cl.monitor().current_map().is_up(1))
    env.keeper().sleep_for(200'000'000);
  cl.wait_all_clean();

  // Every object is byte-identical on BOTH hosts' stores, including those
  // written while osd.1 was dead.
  const auto map = cl.monitor().current_map();
  for (int i = 0; i < kObjects; ++i) {
    const std::string name = "obj" + std::to_string(i);
    const auto pg = map.object_to_pg(1, name);
    for (int n = 0; n < cl.num_nodes(); ++n) {
      auto r = cl.blue_store(n).read(pg.to_coll(), {1, name}, 0, 0);
      ASSERT_TRUE(r.ok()) << "node " << n << " " << name << ": "
                          << r.status().to_string();
      EXPECT_EQ(r->to_string(), pattern(kObjBytes, static_cast<unsigned>(i)))
          << "node " << n << " " << name;
    }
  }
  cl.stop();
}

TEST(ChaosOsdCrash, PrimaryKilledMidBenchRecovers) {
  const auto log = doceph::testing::chaos_run(/*seed=*/2024, crash_scenario);
  // Exactly one kill and one revival, at deterministic hit indices of the
  // fixed-cadence chaos monitor poll.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].rfind("osd.crash@osd.1#", 0) == 0) << log[0];
  EXPECT_TRUE(log[1].rfind("osd.restart@osd.1#", 0) == 0) << log[1];
}

TEST(ChaosOsdCrash, KillScheduleIsSeedReproducible) {
  doceph::testing::expect_reproducible(doceph::testing::env_seed(2024),
                                       crash_scenario);
}

}  // namespace
}  // namespace doceph::cluster
