// Chaos: overlapping faults. The inter-OSD link is partitioned (both
// directions black-holed) at t=1.5s, then the primary is power-loss killed
// at t=3s while its replica is still unreachable — replication traffic
// in flight across the partition when the store dies. The partition heals
// at t=6s, the dead node is revived at t=8s through a real remount, and
// recovery must still converge to zero replica divergence.
#include <gtest/gtest.h>

#include "chaos_util.h"
#include "cluster/cluster.h"

namespace doceph::cluster {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

constexpr Time kPartitionAt = 1'500'000'000;
constexpr Time kKillAt = 3'000'000'000;
constexpr Time kHealAt = 6'000'000'000;
constexpr Time kRestartAt = 8'000'000'000;
constexpr int kObjects = 16;
constexpr std::size_t kObjBytes = 64 << 10;

ClusterConfig multi_cfg() {
  // Baseline mode: the OSDs own the "storage-<i>" network identities, so
  // the partition specs can target exactly the inter-OSD link while client
  // and MON traffic flow freely.
  auto cfg = ClusterConfig::paper_testbed(DeployMode::baseline,
                                          NetworkKind::gbe_100,
                                          /*retain_data=*/true);
  cfg.pg_num = 8;
  cfg.osd_template.heartbeat_grace = 2'000'000'000;
  cfg.osd_template.recovery_quiesce = 500'000'000;
  cfg.osd_template.tick_interval = 250'000'000;
  cfg.client.resend_timeout = 1'000'000'000;

  // Standing partition of both directions of the replication link from
  // t=1.5s (state-like: unlimited count, kept out of the firing log; the
  // scenario heals it by clearing the point).
  fault::FaultSpec part_fwd;
  part_fwd.fire_at_time = kPartitionAt;
  part_fwd.match = "storage-0>storage-1";
  fault::FaultSpec part_rev = part_fwd;
  part_rev.match = "storage-1>storage-0";

  fault::FaultSpec kill;
  kill.fire_at_time = kKillAt;
  kill.count = 1;
  kill.match = "osd.1";
  fault::FaultSpec restart;
  restart.fire_at_time = kRestartAt;
  restart.count = 1;
  restart.match = "osd.1";
  cfg.initial_faults = {{"net.partition", part_fwd},
                        {"net.partition", part_rev},
                        {"osd.hard_crash", kill},
                        {"osd.restart", restart}};
  return cfg;
}

void multi_fault_scenario(Env& env) {
  Cluster cl(env, multi_cfg());
  ASSERT_TRUE(cl.start().ok());
  auto io = cl.client().io_ctx(1);

  bool healed = false;
  std::uint64_t partition_fires = 0;
  for (int i = 0; i < kObjects; ++i) {
    if (!healed && env.now() >= kHealAt) {
      // Heal before the dead node revives, so recovery traffic can flow.
      partition_fires = env.faults().fires("net.partition");
      env.faults().clear("net.partition");
      healed = true;
    }
    const Status st = io.write_full(
        "obj" + std::to_string(i),
        BufferList::copy_of(pattern(kObjBytes, static_cast<unsigned>(i))));
    ASSERT_TRUE(st.ok()) << "obj" << i << ": " << st.to_string();
    env.keeper().sleep_for(600'000'000);
  }
  ASSERT_TRUE(healed);
  // The partition actually black-holed replication traffic before the kill.
  EXPECT_GE(partition_fires, 1u);
  EXPECT_GT(env.now(), kRestartAt);
  EXPECT_GE(cl.client().perf_counters()->get(client::l_client_op_retry), 1u);

  while (!cl.monitor().current_map().is_up(1))
    env.keeper().sleep_for(200'000'000);
  EXPECT_TRUE(cl.blue_store(1).is_mounted());
  cl.wait_all_clean();

  const auto rep = cl.scrub_replicas();
  EXPECT_EQ(rep.objects, static_cast<std::uint64_t>(kObjects));
  EXPECT_TRUE(rep.clean()) << [&] {
    std::string all;
    for (const auto& e : rep.errors) all += e + "\n";
    return all;
  }();
  cl.stop();
}

TEST(ChaosMultiFault, HardKillDuringPartitionConvergesClean) {
  const auto log = doceph::testing::chaos_run(/*seed=*/9090, multi_fault_scenario);
  // The standing partition is state-like (unlogged); only the scripted
  // kill/revive pair shows up.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].rfind("osd.hard_crash@osd.1#", 0) == 0) << log[0];
  EXPECT_TRUE(log[1].rfind("osd.restart@osd.1#", 0) == 0) << log[1];
}

TEST(ChaosMultiFault, OverlapScheduleIsSeedReproducible) {
  doceph::testing::expect_reproducible(doceph::testing::env_seed(9090),
                                       multi_fault_scenario);
}

}  // namespace
}  // namespace doceph::cluster
