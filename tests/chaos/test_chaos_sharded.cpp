// Chaos: power-loss kill under the SHARDED write path (op_shards =
// kv_shards = 4, DESIGN.md §15). The hard-kill drill from
// test_chaos_hard_kill gets the extra hazard sharding introduces: at the
// kill instant four op lanes and four KV sync threads are mid-commit
// independently, so the remount must locate four per-shard checkpoints and
// replay four WAL sub-regions — and any cross-shard chain cut mid-flight
// must surface as a failed (never acked-then-lost) op. Recovery then runs
// over the sharded lanes too (parallel PG scans fan out per lane). The
// seed comes from env_seed() so the nightly chaos matrix sweeps the drill
// across universes.
#include <gtest/gtest.h>

#include "chaos_util.h"
#include "cluster/cluster.h"

namespace doceph::cluster {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

constexpr Time kKillAt = 3'000'000'000;     // 3 s into the bench
constexpr Time kRestartAt = 8'000'000'000;  // revive 5 s later
constexpr int kObjects = 16;
constexpr std::size_t kObjBytes = 64 << 10;

ClusterConfig sharded_chaos_cfg(DeployMode mode) {
  auto cfg = ClusterConfig::paper_testbed(mode, NetworkKind::gbe_100,
                                          /*retain_data=*/true);
  cfg.pg_num = 8;
  cfg.osd_template.op_shards = 4;
  cfg.kv_shards = 4;
  cfg.osd_template.heartbeat_grace = 2'000'000'000;
  cfg.osd_template.recovery_quiesce = 500'000'000;
  cfg.osd_template.tick_interval = 250'000'000;
  cfg.client.resend_timeout = 1'000'000'000;

  fault::FaultSpec kill;
  kill.fire_at_time = kKillAt;
  kill.count = 1;
  kill.match = "osd.1";
  fault::FaultSpec restart;
  restart.fire_at_time = kRestartAt;
  restart.count = 1;
  restart.match = "osd.1";
  cfg.initial_faults = {{"osd.hard_crash", kill}, {"osd.restart", restart}};
  return cfg;
}

void sharded_hard_kill(Env& env, DeployMode mode) {
  Cluster cl(env, sharded_chaos_cfg(mode));
  ASSERT_TRUE(cl.start().ok());
  auto io = cl.client().io_ctx(1);

  // Sequential laps spanning the kill and the revival; objects spread over
  // 8 PGs, so the stream exercises every lane on both OSDs.
  for (int i = 0; i < kObjects; ++i) {
    const Status st = io.write_full(
        "obj" + std::to_string(i),
        BufferList::copy_of(pattern(kObjBytes, static_cast<unsigned>(i))));
    ASSERT_TRUE(st.ok()) << "obj" << i << ": " << st.to_string();
    env.keeper().sleep_for(600'000'000);
  }

  EXPECT_GT(env.now(), kRestartAt);

  // The revived OSD remounts a 4-shard store: per-shard checkpoint locate
  // + replay on every sub-region, then rejoins and recovers.
  while (!cl.monitor().current_map().is_up(1))
    env.keeper().sleep_for(200'000'000);
  EXPECT_TRUE(cl.blue_store(1).is_mounted());
  cl.wait_all_clean();

  // Zero divergence across replicas — including objects whose commits the
  // kill cut mid-chain (they were either never acked or fully replayed).
  const auto rep = cl.scrub_replicas();
  EXPECT_EQ(rep.objects, static_cast<std::uint64_t>(kObjects));
  EXPECT_TRUE(rep.clean()) << [&] {
    std::string all;
    for (const auto& e : rep.errors) all += e + "\n";
    return all;
  }();
  cl.stop();
}

TEST(ChaosSharded, DocephHardKillAtFourShardsRecoversClean) {
  const auto log =
      doceph::testing::chaos_run(doceph::testing::env_seed(5151), [](Env& env) {
        sharded_hard_kill(env, DeployMode::doceph);
      });
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].rfind("osd.hard_crash@osd.1#", 0) == 0) << log[0];
  EXPECT_TRUE(log[1].rfind("osd.restart@osd.1#", 0) == 0) << log[1];
}

TEST(ChaosSharded, BaselineHardKillAtFourShardsRecoversClean) {
  const auto log =
      doceph::testing::chaos_run(doceph::testing::env_seed(5252), [](Env& env) {
        sharded_hard_kill(env, DeployMode::baseline);
      });
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].rfind("osd.hard_crash@osd.1#", 0) == 0) << log[0];
  EXPECT_TRUE(log[1].rfind("osd.restart@osd.1#", 0) == 0) << log[1];
}

TEST(ChaosSharded, ShardedKillScheduleIsSeedReproducible) {
  doceph::testing::expect_reproducible(
      doceph::testing::env_seed(5151),
      [](Env& env) { sharded_hard_kill(env, DeployMode::doceph); });
}

}  // namespace
}  // namespace doceph::cluster
