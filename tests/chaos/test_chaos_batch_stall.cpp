// Chaos: dpu.batch_flush_stall defers batched-hot-path doorbells (the DMA
// batcher's coalesced flush and the comch RPC channel's multi-frame send)
// instead of ringing them. The drill: every stalled flush must still
// complete — later, never lost — and the firing sequence must be a pure
// function of the universe seed.
#include <gtest/gtest.h>

#include "chaos_util.h"

namespace doceph::proxy {
namespace {

using namespace doceph::sim;
using doceph::testing::ChaosProxyNode;
using doceph::testing::chaos_run;
using doceph::testing::expect_reproducible;
using doceph::testing::pattern;

ProxyConfig batched_cfg() {
  ProxyConfig cfg;
  cfg.rpc_batch.enabled = true;
  cfg.dma_batch.enabled = true;
  return cfg;
}

/// Stall a handful of flush doorbells (the "dpu-0" scope covers both the
/// DMA batcher and the device's comch channel), then push writes through.
void batch_stall_scenario(Env& env) {
  ChaosProxyNode node(env, batched_cfg());
  ASSERT_TRUE(node.up().ok());

  env.faults().fire_next("dpu.batch_flush_stall", 4, "dpu-0");
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(node.write("s" + std::to_string(i), 128 << 10,
                           static_cast<unsigned>(i))
                    .ok());

  // Deferred, not dropped: every byte landed on the host store.
  for (int i = 0; i < 6; ++i) {
    const std::string name = "s" + std::to_string(i);
    auto r = node.store->read(ChaosProxyNode::kColl, {1, name}, 0, 0);
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().to_string();
    EXPECT_EQ(r->to_string(), pattern(128 << 10, static_cast<unsigned>(i)))
        << name;
  }

  // The stalls were observed by the hot path, not silently skipped.
  const std::uint64_t stalls = node.proxy->perf_counters()->get(l_dpu_batch_stalls) +
                               node.proxy->rpc().batch_stalls();
  EXPECT_GT(stalls, 0u);
  node.down();
}

TEST(ChaosBatchStall, StalledFlushesCompleteLate) {
  const auto log = chaos_run(doceph::testing::env_seed(4321), batch_stall_scenario);
  // All four armed stalls were consumed by this workload.
  EXPECT_EQ(log.size(), 4u);
  for (const auto& entry : log)
    EXPECT_EQ(entry.rfind("dpu.batch_flush_stall@dpu-0", 0), 0u) << entry;
}

TEST(ChaosBatchStall, FiringSequenceIsSeedReproducible) {
  expect_reproducible(doceph::testing::env_seed(31337), batch_stall_scenario);
}

}  // namespace
}  // namespace doceph::proxy
