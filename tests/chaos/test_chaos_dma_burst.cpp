// Chaos: a burst of DMA errors on the DPU engine must drive the proxy's
// adaptive fallback through its full cycle — dma -> rpc (cooldown) ->
// probe -> dma — without losing a byte, and the injected sequence must be
// bit-reproducible from the universe seed.
#include <gtest/gtest.h>

#include "chaos_util.h"

namespace doceph::proxy {
namespace {

using namespace doceph::sim;
using doceph::testing::ChaosProxyNode;
using doceph::testing::chaos_run;
using doceph::testing::pattern;

constexpr std::size_t kObjBytes = 256 << 10;  // 4 segments at 64 KB

ProxyConfig burst_cfg() {
  ProxyConfig cfg;
  cfg.segment_size = 64 << 10;
  cfg.cooldown = 100'000'000;  // 100 ms: probes come quickly, but the
                               // in-cooldown write (obj2) stays inside it
  return cfg;
}

/// The scenario shared by the behavior test and the reproducibility check.
/// Writes obj0..obj3; a 3-error burst lands inside obj1's DMA pipeline.
void dma_burst_scenario(Env& env) {
  ChaosProxyNode node(env, burst_cfg());
  ASSERT_TRUE(node.up().ok());

  // Healthy fast path.
  ASSERT_TRUE(node.write("obj0", kObjBytes, 0).ok());
  EXPECT_TRUE(node.proxy->fallback().dma_enabled());
  EXPECT_EQ(node.proxy->fallback().failures(), 0u);

  // Burst: the next three DMA jobs on this engine fail. All of obj1's four
  // segments submit before the first completion lands (setup latency is
  // ~2.4 ms, staging is microseconds), so the burst is consumed inside one
  // request; the failed segments are re-sent inline over RPC.
  env.faults().fire_next("doca.dma_error", 3, "dpu-0");
  ASSERT_TRUE(node.write("obj1", kObjBytes, 1).ok());
  EXPECT_EQ(node.proxy->fallback().failures(), 3u);
  EXPECT_FALSE(node.proxy->fallback().dma_enabled());
  EXPECT_GT(node.proxy->rpc_fallback_bytes(), 0u);

  // Inside the cooldown everything rides RPC: no probe, no recovery.
  ASSERT_TRUE(node.write("obj2", kObjBytes, 2).ok());
  EXPECT_EQ(node.proxy->fallback().probes(), 0u);
  EXPECT_FALSE(node.proxy->fallback().dma_enabled());

  // Past the cooldown the first segment is the probe; it succeeds and
  // re-enables DMA (paper §4's probe transfer).
  env.keeper().sleep_for(node.proxy->config().cooldown + 5'000'000);
  ASSERT_TRUE(node.write("obj3", kObjBytes, 3).ok());
  EXPECT_EQ(node.proxy->fallback().probes(), 1u);
  EXPECT_EQ(node.proxy->fallback().recoveries(), 1u);
  EXPECT_TRUE(node.proxy->fallback().dma_enabled());

  // Whatever path each segment took, the bytes on the host store are right.
  for (int i = 0; i < 4; ++i) {
    const std::string name = "obj" + std::to_string(i);
    auto r = node.store->read(ChaosProxyNode::kColl, {1, name}, 0, 0);
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().to_string();
    EXPECT_EQ(r->to_string(), pattern(kObjBytes, static_cast<unsigned>(i))) << name;
  }
  node.down();
}

TEST(ChaosDmaBurst, FallbackCyclesDmaRpcProbeDma) {
  const auto log = chaos_run(/*seed=*/1234, dma_burst_scenario);
  // The burst fires on the entry's first three hits (obj0 predates the
  // entry, so its submissions don't count against it).
  const std::vector<std::string> expect = {"doca.dma_error@dpu-0#1",
                                           "doca.dma_error@dpu-0#2",
                                           "doca.dma_error@dpu-0#3"};
  EXPECT_EQ(log, expect);
}

TEST(ChaosDmaBurst, FiringSequenceIsSeedReproducible) {
  doceph::testing::expect_reproducible(doceph::testing::env_seed(99),
                                       dma_burst_scenario);
}

TEST(ChaosDmaBurst, ProbabilisticErrorsRecoverAndReplay) {
  // A sustained probabilistic error rate exercises repeated
  // cooldown/probe/recovery laps; the decision stream (and thus the firing
  // log) must still be a pure function of the seed.
  auto scenario = [](Env& env) {
    ChaosProxyNode node(env, burst_cfg());
    ASSERT_TRUE(node.up().ok());
    fault::FaultSpec spec;
    spec.probability = 0.3;
    spec.match = "dpu-0";
    env.faults().set("doca.dma_error", spec);
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(node.write("p" + std::to_string(i), kObjBytes,
                             static_cast<unsigned>(i))
                      .ok());
      env.keeper().sleep_for(30'000'000);
    }
    env.faults().clear("doca.dma_error");
    // Let any outstanding cooldown lapse, then confirm the path heals.
    env.keeper().sleep_for(node.proxy->config().cooldown + 5'000'000);
    ASSERT_TRUE(node.write("final", kObjBytes, 42).ok());
    EXPECT_GT(node.proxy->fallback().failures(), 0u);
    EXPECT_GT(node.proxy->fallback().recoveries(), 0u);
    EXPECT_TRUE(node.proxy->fallback().dma_enabled());
    node.down();
  };
  doceph::testing::expect_reproducible(doceph::testing::env_seed(7), scenario);
}

}  // namespace
}  // namespace doceph::proxy
