// Chaos: partitions. (1) The DPU proxy loses its CommChannel to the host —
// blocking RPCs must time out (bumping l_dpu_rpc_timeout and reclaiming the
// slot) instead of hanging, and traffic must flow again once the partition
// heals. (2) A client is partitioned from one storage node — the hardened
// client fails the op at its deadline instead of hanging, while ops whose
// primary is unaffected still succeed.
#include <gtest/gtest.h>

#include "chaos_util.h"
#include "cluster/cluster.h"

namespace doceph::proxy {
namespace {

using namespace doceph::sim;
using doceph::testing::ChaosProxyNode;
using doceph::testing::pattern;
using doceph::testing::run_sim;

TEST(ChaosPartition, DpuHostPartitionTimesOutThenHeals) {
  Env env(TimeKeeper::Mode::virtual_time, /*seed=*/5);
  run_sim(env, [&] {
    ProxyConfig pcfg;
    pcfg.rpc_timeout = 200'000'000;  // 200 ms: fail fast under partition
    ChaosProxyNode node(env, pcfg);
    ASSERT_TRUE(node.up().ok());
    ASSERT_TRUE(node.write("pre", 2048, 1).ok());  // inline-sized, healthy

    // Drop every CommChannel message in both directions ("dpu-0" matches
    // "dpu-0/h2d" and "dpu-0/d2h"): the host is unreachable. A state-like
    // spec (always-on while armed) models the partition.
    fault::FaultSpec part;
    part.fire_at_time = 0;
    part.match = "dpu-0";
    env.faults().set("doca.comch_drop", part);

    const Time t0 = env.now();
    const Status st = node.write("lost", 2048, 2);
    EXPECT_EQ(st.code(), Errc::timed_out) << st.to_string();
    const Time elapsed = env.now() - t0;
    EXPECT_GE(elapsed, pcfg.rpc_timeout);
    EXPECT_LT(elapsed, pcfg.rpc_timeout + 100'000'000);
    EXPECT_GE(node.proxy->perf_counters()->get(l_dpu_rpc_timeout), 1u);

    // Heal: the channel slot was reclaimed on timeout, so the very next
    // call reuses the path cleanly.
    env.faults().clear("doca.comch_drop");
    ASSERT_TRUE(node.write("lost", 2048, 2).ok());
    ASSERT_TRUE(node.write("post", 2048, 3).ok());

    for (const auto& [name, seed] :
         {std::pair<std::string, unsigned>{"pre", 1}, {"lost", 2}, {"post", 3}}) {
      auto r = node.store->read(ChaosProxyNode::kColl, {1, name}, 0, 0);
      ASSERT_TRUE(r.ok()) << name;
      EXPECT_EQ(r->to_string(), pattern(2048, seed)) << name;
    }
    node.down();
  });
}

TEST(ChaosPartition, ClientDeadlineBoundsPartitionedOp) {
  Env env(TimeKeeper::Mode::virtual_time, /*seed=*/6);
  auto cfg = cluster::ClusterConfig::paper_testbed(cluster::DeployMode::baseline,
                                                   cluster::NetworkKind::gbe_100,
                                                   /*retain_data=*/true);
  cfg.pg_num = 8;
  cfg.client.resend_timeout = 500'000'000;   // resend every 0.5 s of silence
  cfg.client.op_deadline = 3'000'000'000;    // give up after 3 s
  cluster::Cluster cl(env, cfg);
  run_sim(env, [&] {
    ASSERT_TRUE(cl.start().ok());
    auto io = cl.client().io_ctx(1);

    // Pick one object homed on each OSD so the partition's blast radius is
    // observable: osd.0 is unreachable, osd.1 is fine.
    const auto map = cl.monitor().current_map();
    std::string on_osd0;
    std::string on_osd1;
    for (int i = 0; on_osd0.empty() || on_osd1.empty(); ++i) {
      const std::string name = "part" + std::to_string(i);
      const int primary = map.pg_primary(map.object_to_pg(1, name));
      if (primary == 0 && on_osd0.empty()) on_osd0 = name;
      if (primary == 1 && on_osd1.empty()) on_osd1 = name;
    }

    // One-way blackhole client -> storage-0: requests (and resends) vanish
    // in flight. The MON and inter-OSD paths are untouched, so the map
    // keeps osd.0 up and the client cannot fail over — the op must die at
    // its own deadline.
    fault::FaultSpec part;
    part.fire_at_time = 0;
    part.match = "client-host>storage-0";
    env.faults().set("net.partition", part);

    const Time t0 = env.now();
    const Status st = io.write_full(on_osd0, BufferList::copy_of(pattern(64 << 10)));
    EXPECT_EQ(st.code(), Errc::timed_out) << st.to_string();
    const Time elapsed = env.now() - t0;
    EXPECT_GE(elapsed, cfg.client.op_deadline);
    EXPECT_LT(elapsed, cfg.client.op_deadline + 2'000'000'000);
    EXPECT_GE(cl.client().perf_counters()->get(client::l_client_op_timeout), 1u);

    // The unpartitioned path keeps working throughout.
    EXPECT_TRUE(
        io.write_full(on_osd1, BufferList::copy_of(pattern(64 << 10, 2))).ok());

    env.faults().clear("net.partition");
    cl.stop();
  });
}

}  // namespace
}  // namespace doceph::proxy
