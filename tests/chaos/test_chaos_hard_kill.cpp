// Chaos: power-loss kill of the primary OSD mid-bench. Unlike the graceful
// "osd.crash" drill, "osd.hard_crash" rips the host BlueStore out from
// under the daemons (in-flight transactions and queued KV txns drop with
// errors, nothing is drained), so the revival at t=8s has to go through the
// real recovery path: checkpoint locate + WAL replay on remount — with the
// victim's block device running slow (standing latency spikes) the whole
// time, replay included. In doceph mode the DPU-side proxy and host backend
// are re-created and re-attach to the remounted store. The baseline variant
// additionally fires a one-shot bdev.io_error on the first replay read, so
// the first restart attempt fails and the chaos monitor's retry brings the
// node back. Both end with the replica-consistency scrub finding zero
// divergence, reproducibly from one seed.
#include <gtest/gtest.h>

#include "chaos_util.h"
#include "cluster/cluster.h"

namespace doceph::cluster {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

constexpr Time kKillAt = 3'000'000'000;     // 3 s into the bench
constexpr Time kRestartAt = 8'000'000'000;  // revive 5 s later
constexpr int kObjects = 16;
constexpr std::size_t kObjBytes = 64 << 10;

ClusterConfig hard_cfg(DeployMode mode, bool replay_io_error) {
  auto cfg = ClusterConfig::paper_testbed(mode, NetworkKind::gbe_100,
                                          /*retain_data=*/true);
  cfg.pg_num = 8;
  cfg.osd_template.heartbeat_grace = 2'000'000'000;
  cfg.osd_template.recovery_quiesce = 500'000'000;
  cfg.osd_template.tick_interval = 250'000'000;
  cfg.client.resend_timeout = 1'000'000'000;  // re-drive silent ops quickly

  // The chaos script: power-loss osd.1 at t=3s, revive it at t=8s. One-shot
  // specs (count=1), so each run logs exactly these fires.
  fault::FaultSpec kill;
  kill.fire_at_time = kKillAt;
  kill.count = 1;
  kill.match = "osd.1";
  fault::FaultSpec restart;
  restart.fire_at_time = kRestartAt;
  restart.count = 1;
  restart.match = "osd.1";
  // Standing latency spikes on the victim's device: every IO — including
  // the remount's checkpoint-locate and WAL-replay reads — runs 2 ms slow.
  // State-like (unlimited count), so it stays out of the firing log.
  fault::FaultSpec spike;
  spike.fire_at_time = 0;
  spike.delay_ns = 2'000'000;
  spike.match = "bdev-1";
  cfg.initial_faults = {{"osd.hard_crash", kill},
                        {"osd.restart", restart},
                        {"bdev.latency_spike", spike}};
  if (replay_io_error) {
    // One-shot io_error armed to hit the first bdev-1 IO at/after the
    // restart time. The store is dead between kill and revival, so that IO
    // is the remount's first checkpoint read: mount fails, the node stays
    // down, and the chaos monitor retries the restart on its next poll.
    fault::FaultSpec replay_err;
    replay_err.fire_at_time = kRestartAt;
    replay_err.count = 1;
    replay_err.match = "bdev-1";
    cfg.initial_faults.emplace_back("bdev.io_error", replay_err);
  }
  return cfg;
}

void hard_kill_scenario(Env& env, DeployMode mode, bool replay_io_error) {
  Cluster cl(env, hard_cfg(mode, replay_io_error));
  ASSERT_TRUE(cl.start().ok());
  auto io = cl.client().io_ctx(1);

  // A slow sequential bench spanning the kill (t=3s) and revival (t=8s):
  // ~600 ms per lap keeps writes in flight across both transitions.
  for (int i = 0; i < kObjects; ++i) {
    const Status st = io.write_full(
        "obj" + std::to_string(i),
        BufferList::copy_of(pattern(kObjBytes, static_cast<unsigned>(i))));
    ASSERT_TRUE(st.ok()) << "obj" << i << ": " << st.to_string();
    env.keeper().sleep_for(600'000'000);
  }

  // The kill actually happened mid-bench and cost the client at least one
  // in-flight op (dropped by the dying store, re-driven by resend).
  EXPECT_GT(env.now(), kRestartAt);
  EXPECT_GE(cl.client().perf_counters()->get(client::l_client_op_retry), 1u);

  // The revived OSD rejoins the map over a genuinely remounted store.
  while (!cl.monitor().current_map().is_up(1))
    env.keeper().sleep_for(200'000'000);
  EXPECT_TRUE(cl.blue_store(1).is_mounted());
  cl.wait_all_clean();

  // Post-recovery consistency scrub: every PG's acting set agrees on every
  // object's digest, including objects written while osd.1 was dead.
  const auto rep = cl.scrub_replicas();
  EXPECT_EQ(rep.objects, static_cast<std::uint64_t>(kObjects));
  EXPECT_TRUE(rep.clean()) << [&] {
    std::string all;
    for (const auto& e : rep.errors) all += e + "\n";
    return all;
  }();
  cl.stop();
}

TEST(ChaosHardKill, DocephPrimaryHardKilledRecoversClean) {
  const auto log = doceph::testing::chaos_run(/*seed=*/4242, [](Env& env) {
    hard_kill_scenario(env, DeployMode::doceph, /*replay_io_error=*/false);
  });
  // Exactly one power-loss and one revival; the standing latency spikes are
  // state-like and never appear in the log.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].rfind("osd.hard_crash@osd.1#", 0) == 0) << log[0];
  EXPECT_TRUE(log[1].rfind("osd.restart@osd.1#", 0) == 0) << log[1];
}

TEST(ChaosHardKill, BaselineReplayIoErrorIsRetriedUntilMountSucceeds) {
  const auto log = doceph::testing::chaos_run(/*seed=*/4343, [](Env& env) {
    hard_kill_scenario(env, DeployMode::baseline, /*replay_io_error=*/true);
  });
  // Kill, revival fire, then the replay read trips the one-shot io_error
  // (first restart attempt fails); the retry that succeeds consumes no
  // further faults.
  ASSERT_EQ(log.size(), 3u);
  EXPECT_TRUE(log[0].rfind("osd.hard_crash@osd.1#", 0) == 0) << log[0];
  EXPECT_TRUE(log[1].rfind("osd.restart@osd.1#", 0) == 0) << log[1];
  EXPECT_TRUE(log[2].rfind("bdev.io_error@bdev-1#", 0) == 0) << log[2];
}

TEST(ChaosHardKill, KillScheduleIsSeedReproducible) {
  doceph::testing::expect_reproducible(doceph::testing::env_seed(4242), [](Env& env) {
    hard_kill_scenario(env, DeployMode::doceph, /*replay_io_error=*/false);
  });
}

}  // namespace
}  // namespace doceph::cluster
