#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "proxy/fallback.h"

namespace doceph::proxy {
namespace {

using Path = FallbackManager::Path;

TEST(FallbackProbe, CooldownExpiryBoundary) {
  FallbackManager fb(/*cooldown=*/50);
  EXPECT_EQ(fb.choose(0), Path::dma);

  fb.on_dma_failure(100);
  EXPECT_FALSE(fb.dma_enabled());
  // Strictly inside the cooldown window: RPC only.
  EXPECT_EQ(fb.choose(100), Path::rpc);
  EXPECT_EQ(fb.choose(149), Path::rpc);
  EXPECT_EQ(fb.probes(), 0u);
  // The expiry instant itself is probe-eligible (now >= expiry).
  EXPECT_EQ(fb.choose(150), Path::probe);
  EXPECT_EQ(fb.probes(), 1u);
  // With the probe outstanding, everyone else stays on RPC.
  EXPECT_EQ(fb.choose(151), Path::rpc);
  EXPECT_EQ(fb.choose(10'000), Path::rpc);
  EXPECT_EQ(fb.probes(), 1u);
}

TEST(FallbackProbe, ConcurrentChooseHandsOutExactlyOneProbe) {
  FallbackManager fb(/*cooldown=*/10);
  fb.on_dma_failure(0);

  constexpr int kThreads = 16;
  std::vector<Path> picked(kThreads, Path::dma);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] { picked[static_cast<std::size_t>(i)] = fb.choose(10); });
  for (auto& t : threads) t.join();

  int probes = 0;
  int rpcs = 0;
  for (const Path p : picked) {
    if (p == Path::probe) ++probes;
    if (p == Path::rpc) ++rpcs;
  }
  EXPECT_EQ(probes, 1);
  EXPECT_EQ(rpcs, kThreads - 1);
  EXPECT_EQ(fb.probes(), 1u);
}

TEST(FallbackProbe, ProbeFailureReArmsCooldown) {
  FallbackManager fb(/*cooldown=*/100);
  fb.on_dma_failure(0);
  EXPECT_EQ(fb.choose(100), Path::probe);

  // The probe transfer fails: the cooldown restarts from the failure time
  // and the probe token is returned (a later expiry yields a fresh probe).
  fb.on_dma_failure(120);
  EXPECT_FALSE(fb.dma_enabled());
  EXPECT_EQ(fb.choose(150), Path::rpc);
  EXPECT_EQ(fb.choose(219), Path::rpc);
  EXPECT_EQ(fb.choose(220), Path::probe);
  EXPECT_EQ(fb.failures(), 2u);
  EXPECT_EQ(fb.probes(), 2u);
  EXPECT_EQ(fb.recoveries(), 0u);
}

TEST(FallbackProbe, FullCycleCountsOneRecovery) {
  FallbackManager fb(/*cooldown=*/100);

  // Steady-state successes are not recoveries.
  EXPECT_EQ(fb.choose(0), Path::dma);
  fb.on_dma_success();
  EXPECT_EQ(fb.recoveries(), 0u);

  fb.on_dma_failure(10);
  EXPECT_EQ(fb.choose(50), Path::rpc);
  EXPECT_EQ(fb.choose(110), Path::probe);
  fb.on_dma_success();  // probe came back clean: DMA re-enabled

  EXPECT_TRUE(fb.dma_enabled());
  EXPECT_EQ(fb.choose(111), Path::dma);
  EXPECT_EQ(fb.failures(), 1u);
  EXPECT_EQ(fb.probes(), 1u);
  EXPECT_EQ(fb.recoveries(), 1u);
}

}  // namespace
}  // namespace doceph::proxy
