// Read-path (paper §5.5 extension) unit coverage on the single-node proxy
// stack: inline vs DMA returns, offsets, fallback interplay, and slot reuse.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "bluestore/bluestore.h"
#include "proxy/host_backend.h"
#include "proxy/proxy_object_store.h"

namespace doceph::proxy {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

const os::coll_t kColl{1, 0};
const os::ghobject_t kObj{1, "robj"};

struct ReadFixture {
  Env env;
  net::Fabric fabric{env};
  CpuDomain host_cpu{env.keeper(), "host-0", 8, 1.0};
  dpu::DpuDevice dpu{env, fabric, "dpu-0", dpu::DpuProfile{}};
  std::unique_ptr<bluestore::BlueStore> store;
  std::unique_ptr<HostBackendService> backend;
  std::unique_ptr<ProxyObjectStore> proxy;

  explicit ReadFixture(ProxyConfig pcfg = {}) {
    bluestore::BlueStoreConfig scfg;
    scfg.device.size_bytes = 2ull << 30;
    store = std::make_unique<bluestore::BlueStore>(env, &host_cpu, scfg);
    proxy = std::make_unique<ProxyObjectStore>(env, dpu, pcfg);
    backend = std::make_unique<HostBackendService>(
        env, host_cpu, *store, dpu.host_comch(), proxy->slots().host_mmap(),
        proxy->slots().slot_size());
  }

  void up_with(const std::string& content) {
    run_sim(env, [&] {
      ASSERT_TRUE(store->mkfs().ok());
      ASSERT_TRUE(store->mount().ok());
      ASSERT_TRUE(backend->start().ok());
      ASSERT_TRUE(proxy->mount().ok());
      os::Transaction t;
      t.create_collection(kColl);
      t.write_full(kColl, kObj, BufferList::copy_of(content));
      std::mutex m;
      CondVar cv(env.keeper());
      bool done = false;
      proxy->queue_transaction(std::move(t), [&](Status st) {
        ASSERT_TRUE(st.ok());
        const std::lock_guard<std::mutex> lk(m);
        done = true;
        cv.notify_all();
      });
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return done; });
    });
  }

  void down() {
    run_sim(env, [&] {
      ASSERT_TRUE(proxy->umount().ok());
      ASSERT_TRUE(store->umount().ok());
      backend->shutdown();
    });
  }
};

TEST(ProxyReads, TinyReadStaysInline) {
  ReadFixture f;
  f.up_with("small content");
  run_sim(f.env, [&] {
    const auto jobs0 = f.dpu.dma().jobs_completed();
    auto r = f.proxy->read(kColl, kObj, 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), "small content");
    EXPECT_EQ(f.dpu.dma().jobs_completed(), jobs0);  // inline, no DMA
  });
  f.down();
}

TEST(ProxyReads, ExactInlineBoundary) {
  ReadFixture f;
  const std::string content = pattern(4096);  // == inline_read_max
  f.up_with(content);
  run_sim(f.env, [&] {
    const auto jobs0 = f.dpu.dma().jobs_completed();
    auto r = f.proxy->read(kColl, kObj, 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), content);
    EXPECT_EQ(f.dpu.dma().jobs_completed(), jobs0);
    auto r2 = f.proxy->read(kColl, kObj, 4095, 10);  // clamped 1-byte tail
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2->length(), 1u);
  });
  f.down();
}

TEST(ProxyReads, LargeReadUsesDmaAndMatches) {
  ReadFixture f;
  const std::string content = pattern(5 << 20, 9);
  f.up_with(content);
  run_sim(f.env, [&] {
    const auto jobs0 = f.dpu.dma().jobs_completed();
    auto r = f.proxy->read(kColl, kObj, 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), content);
    EXPECT_GT(f.dpu.dma().jobs_completed(), jobs0);
  });
  f.down();
}

TEST(ProxyReads, OffsetRangesAcrossSegmentBoundaries) {
  ReadFixture f;
  const std::string content = pattern(6 << 20, 4);
  f.up_with(content);
  run_sim(f.env, [&] {
    for (const auto [off, len] :
         {std::pair<std::size_t, std::size_t>{0, 100},
          {2 << 20, 4096},            // exactly at a slot boundary
          {(2 << 20) - 50, 100},      // straddles it
          {(6 << 20) - 10, 100}}) {   // clamped tail
      auto r = f.proxy->read(kColl, kObj, off, len);
      ASSERT_TRUE(r.ok()) << off;
      EXPECT_EQ(r->to_string(), content.substr(off, len)) << off;
    }
  });
  f.down();
}

TEST(ProxyReads, ReadDuringCooldownFallsBackInline) {
  ProxyConfig cfg;
  cfg.cooldown = 10'000'000'000;  // long cooldown: stay on RPC
  ReadFixture f(cfg);
  const std::string content = pattern(3 << 20, 7);
  f.up_with(content);
  run_sim(f.env, [&] {
    f.proxy->fallback().on_dma_failure(f.env.now());
    ASSERT_FALSE(f.proxy->fallback().dma_enabled());
    const auto jobs0 = f.dpu.dma().jobs_completed();
    auto r = f.proxy->read(kColl, kObj, 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), content);              // correct...
    EXPECT_EQ(f.dpu.dma().jobs_completed(), jobs0);  // ...without touching DMA
  });
  f.down();
}

TEST(ProxyReads, SlotsAreReleasedAfterReads) {
  ProxyConfig cfg;
  cfg.slots = 2;
  ReadFixture f(cfg);
  const std::string content = pattern(4 << 20, 3);
  f.up_with(content);
  run_sim(f.env, [&] {
    // Many sequential large reads through a 2-slot pool: leaks would wedge.
    for (int i = 0; i < 10; ++i) {
      auto r = f.proxy->read(kColl, kObj, 0, 0);
      ASSERT_TRUE(r.ok()) << i;
      ASSERT_EQ(r->length(), content.size()) << i;
    }
    EXPECT_TRUE(f.proxy->slots().try_acquire().has_value());  // pool not empty
  });
  f.down();
}

TEST(ProxyReads, MissingObjectPropagatesNotFound) {
  ReadFixture f;
  f.up_with("x");
  run_sim(f.env, [&] {
    auto r = f.proxy->read(kColl, {1, "nope"}, 0, 0);
    EXPECT_EQ(r.status().code(), Errc::not_found);
  });
  f.down();
}

}  // namespace
}  // namespace doceph::proxy
