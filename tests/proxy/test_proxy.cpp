#include "proxy/proxy_object_store.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "bluestore/bluestore.h"
#include "proxy/host_backend.h"

namespace doceph::proxy {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

const os::coll_t kColl{1, 0};
const os::ghobject_t kObj{1, "obj"};

/// DPU + host BlueStore + backend + proxy — the full DoCeph storage path of
/// one node, without the OSD on top.
struct ProxyFixture {
  Env env;
  net::Fabric fabric{env};
  CpuDomain host_cpu{env.keeper(), "host-0", 8, 1.0};
  dpu::DpuDevice dpu{env, fabric, "dpu-0", dpu::DpuProfile{}};
  std::unique_ptr<bluestore::BlueStore> store;
  std::unique_ptr<HostBackendService> backend;
  std::unique_ptr<ProxyObjectStore> proxy;

  explicit ProxyFixture(ProxyConfig pcfg = {}) {
    bluestore::BlueStoreConfig scfg;
    scfg.device.size_bytes = 4ull << 30;
    store = std::make_unique<bluestore::BlueStore>(env, &host_cpu, scfg);
    proxy = std::make_unique<ProxyObjectStore>(env, dpu, pcfg);
    backend = std::make_unique<HostBackendService>(
        env, host_cpu, *store, dpu.host_comch(), proxy->slots().host_mmap(),
        proxy->slots().slot_size());
  }

  void up() {
    run_sim(env, [&] {
      ASSERT_TRUE(store->mkfs().ok());
      ASSERT_TRUE(store->mount().ok());
      ASSERT_TRUE(backend->start().ok());
      ASSERT_TRUE(proxy->mount().ok());
      Status st = commit(make_coll());
      ASSERT_TRUE(st.ok()) << st.to_string();
    });
  }

  void down() {
    run_sim(env, [&] {
      ASSERT_TRUE(proxy->umount().ok());
      ASSERT_TRUE(store->umount().ok());
      backend->shutdown();
    });
  }

  static os::Transaction make_coll() {
    os::Transaction t;
    t.create_collection(kColl);
    return t;
  }

  Status commit(os::Transaction t) {
    std::mutex m;
    CondVar cv(env.keeper());
    bool done = false;
    Status out;
    proxy->queue_transaction(std::move(t), [&](Status st) {
      const std::lock_guard<std::mutex> lk(m);
      out = st;
      done = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done; });
    return out;
  }
};

TEST(Proxy, SmallWriteInlineRoundTrip) {
  ProxyFixture f;
  f.up();
  run_sim(f.env, [&] {
    os::Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of("small payload"));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    // Visible on the host store directly...
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), "small payload");
    // ...and through the proxy read path.
    auto r = f.proxy->read(kColl, kObj, 0, 0);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r->to_string(), "small payload");
  });
  EXPECT_EQ(f.dpu.dma().jobs_completed(), 0u);  // tiny payload: no DMA round
  f.down();
}

TEST(Proxy, LargeWriteUsesDmaSegments) {
  ProxyFixture f;
  f.up();
  const std::string big = pattern(7 << 20);  // 7 MB -> 4 segments at 2 MB
  run_sim(f.env, [&] {
    os::Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(big));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), big);
  });
  EXPECT_EQ(f.dpu.dma().jobs_completed(), 4u);
  EXPECT_EQ(f.proxy->dma_bytes(), big.size());
  EXPECT_EQ(f.backend->txns_applied(), 2u);  // create_collection + the write
  const auto bd = f.proxy->breakdown();
  EXPECT_EQ(bd.count, 1u);
  EXPECT_GT(bd.dma_ns, 0u);
  EXPECT_GT(bd.host_write_ns, 0u);
  EXPECT_GT(bd.total_ns, bd.dma_ns);
  f.down();
}

TEST(Proxy, LargeReadComesBackOverDma) {
  ProxyFixture f;
  f.up();
  const std::string big = pattern(5 << 20, 3);
  run_sim(f.env, [&] {
    os::Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(big));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    const auto jobs_before = f.dpu.dma().jobs_completed();
    auto r = f.proxy->read(kColl, kObj, 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), big);
    EXPECT_GT(f.dpu.dma().jobs_completed(), jobs_before);  // host->dpu transfers
    // Partial read.
    auto mid = f.proxy->read(kColl, kObj, 1 << 20, 4096);
    ASSERT_TRUE(mid.ok());
    EXPECT_EQ(mid->to_string(), big.substr(1 << 20, 4096));
  });
  f.down();
}

TEST(Proxy, ControlPlaneOps) {
  ProxyFixture f;
  f.up();
  run_sim(f.env, [&] {
    os::Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of("x"));
    t.omap_set(kColl, kObj, {{"k", BufferList::copy_of("v")}});
    ASSERT_TRUE(f.commit(std::move(t)).ok());

    EXPECT_TRUE(f.proxy->exists(kColl, kObj));
    EXPECT_FALSE(f.proxy->exists(kColl, {1, "nope"}));
    auto st = f.proxy->stat(kColl, kObj);
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->size, 1u);
    auto omap = f.proxy->omap_get(kColl, kObj);
    ASSERT_TRUE(omap.ok());
    EXPECT_EQ(omap->at("k").to_string(), "v");
    auto objs = f.proxy->list_objects(kColl);
    ASSERT_TRUE(objs.ok());
    EXPECT_EQ(objs->size(), 1u);
    EXPECT_TRUE(f.proxy->collection_exists(kColl));
    EXPECT_FALSE(f.proxy->collection_exists({9, 9}));
    EXPECT_EQ(f.proxy->list_collections().size(), 1u);
    EXPECT_EQ(f.proxy->stat(kColl, {1, "nope"}).status().code(), Errc::not_found);
  });
  EXPECT_GT(f.backend->control_rpcs(), 5u);
  f.down();
}

TEST(Proxy, DmaFailureFallsBackToRpcAndRecovers) {
  ProxyConfig cfg;
  cfg.cooldown = 50'000'000;  // 50 ms for a fast test
  ProxyFixture f(cfg);
  f.up();
  const std::string big = pattern(4 << 20, 9);
  f.dpu.dma().fail_next(1);
  run_sim(f.env, [&] {
    // First write hits the injected DMA failure -> inline fallback, still
    // commits correctly.
    os::Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(big));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), big);
    EXPECT_FALSE(f.proxy->fallback().dma_enabled());
    EXPECT_GT(f.proxy->rpc_fallback_bytes(), 0u);

    // During cooldown, writes route over RPC.
    const auto dma_bytes_before = f.proxy->dma_bytes();
    os::Transaction t2;
    t2.write_full(kColl, {1, "during-cooldown"}, BufferList::copy_of(pattern(3 << 20, 4)));
    ASSERT_TRUE(f.commit(std::move(t2)).ok());
    EXPECT_EQ(f.proxy->dma_bytes(), dma_bytes_before);

    // After cooldown a probe re-enables DMA.
    f.env.keeper().sleep_for(60'000'000);
    os::Transaction t3;
    t3.write_full(kColl, {1, "after-cooldown"}, BufferList::copy_of(pattern(3 << 20, 5)));
    ASSERT_TRUE(f.commit(std::move(t3)).ok());
    EXPECT_TRUE(f.proxy->fallback().dma_enabled());
    EXPECT_GT(f.proxy->dma_bytes(), dma_bytes_before);
    EXPECT_EQ(f.store->read(kColl, {1, "after-cooldown"}, 0, 0)->to_string(),
              pattern(3 << 20, 5));
  });
  EXPECT_GE(f.proxy->fallback().failures(), 1u);
  f.down();
}

TEST(Proxy, ConcurrentWritersKeepPerObjectOrder) {
  ProxyFixture f;
  f.up();
  run_sim(f.env, [&] {
    std::mutex m;
    CondVar cv(f.env.keeper());
    int done = 0;
    constexpr int kN = 12;
    // Interleave: many objects written concurrently + one object written
    // twice in order.
    for (int i = 0; i < kN; ++i) {
      os::Transaction t;
      t.write_full(kColl, {1, "multi" + std::to_string(i)},
                   BufferList::copy_of(pattern(1 << 20, static_cast<unsigned>(i))));
      f.proxy->queue_transaction(std::move(t), [&](Status st) {
        EXPECT_TRUE(st.ok());
        const std::lock_guard<std::mutex> lk(m);
        ++done;
        cv.notify_all();
      });
    }
    os::Transaction first, second;
    first.write_full(kColl, kObj, BufferList::copy_of(pattern(3 << 20, 100)));
    second.write_full(kColl, kObj, BufferList::copy_of("FINAL"));
    auto bump = [&](Status st) {
      EXPECT_TRUE(st.ok());
      const std::lock_guard<std::mutex> lk(m);
      ++done;
      cv.notify_all();
    };
    f.proxy->queue_transaction(std::move(first), bump);
    f.proxy->queue_transaction(std::move(second), bump);

    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == kN + 2; });
    lk.unlock();

    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), "FINAL");
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(f.store->read(kColl, {1, "multi" + std::to_string(i)}, 0, 0)->to_string(),
                pattern(1 << 20, static_cast<unsigned>(i)));
    }
  });
  f.down();
}

TEST(Proxy, BreakdownAccumulatesAndResets) {
  ProxyFixture f;
  f.up();
  run_sim(f.env, [&] {
    for (int i = 0; i < 3; ++i) {
      os::Transaction t;
      t.write_full(kColl, {1, "bd" + std::to_string(i)},
                   BufferList::copy_of(pattern(2 << 20, static_cast<unsigned>(i))));
      ASSERT_TRUE(f.commit(std::move(t)).ok());
    }
  });
  auto bd = f.proxy->breakdown();
  EXPECT_EQ(bd.count, 3u);
  EXPECT_GT(bd.total_ns, 0u);
  EXPECT_GE(bd.avg(bd.total_ns),
            bd.avg(bd.dma_ns));  // total >= component
  f.proxy->reset_breakdown();
  EXPECT_EQ(f.proxy->breakdown().count, 0u);
  f.down();
}

TEST(Proxy, MrCacheOffStillCorrect) {
  ProxyConfig cfg;
  cfg.mr_cache = false;
  ProxyFixture f(cfg);
  f.up();
  const std::string big = pattern(4 << 20, 2);
  run_sim(f.env, [&] {
    os::Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(big));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), big);
  });
  f.down();
}

TEST(Proxy, PipeliningOffStillCorrect) {
  ProxyConfig cfg;
  cfg.pipelining = false;
  ProxyFixture f(cfg);
  f.up();
  const std::string big = pattern(6 << 20, 8);
  run_sim(f.env, [&] {
    os::Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(big));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), big);
  });
  f.down();
}

}  // namespace
}  // namespace doceph::proxy
