// Multi-op transactions through the full DoCeph data path: one transaction
// touching several objects with mixed payload sizes (inline + staged DMA
// segments) plus omap — must commit atomically on the host store.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "bluestore/bluestore.h"
#include "proxy/host_backend.h"
#include "proxy/proxy_object_store.h"

namespace doceph::proxy {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

const os::coll_t kColl{1, 0};

struct MultiFixture {
  Env env;
  net::Fabric fabric{env};
  CpuDomain host_cpu{env.keeper(), "host-0", 8, 1.0};
  dpu::DpuDevice dpu{env, fabric, "dpu-0", dpu::DpuProfile{}};
  std::unique_ptr<bluestore::BlueStore> store;
  std::unique_ptr<HostBackendService> backend;
  std::unique_ptr<ProxyObjectStore> proxy;

  MultiFixture() {
    bluestore::BlueStoreConfig scfg;
    scfg.device.size_bytes = 2ull << 30;
    store = std::make_unique<bluestore::BlueStore>(env, &host_cpu, scfg);
    proxy = std::make_unique<ProxyObjectStore>(env, dpu, ProxyConfig{});
    backend = std::make_unique<HostBackendService>(
        env, host_cpu, *store, dpu.host_comch(), proxy->slots().host_mmap(),
        proxy->slots().slot_size());
  }

  void up() {
    run_sim(env, [&] {
      ASSERT_TRUE(store->mkfs().ok());
      ASSERT_TRUE(store->mount().ok());
      ASSERT_TRUE(backend->start().ok());
      ASSERT_TRUE(proxy->mount().ok());
    });
  }
  void down() {
    run_sim(env, [&] {
      ASSERT_TRUE(proxy->umount().ok());
      ASSERT_TRUE(store->umount().ok());
      backend->shutdown();
    });
  }

  Status commit(os::Transaction t) {
    Status out;
    run_sim(env, [&] {
      std::mutex m;
      CondVar cv(env.keeper());
      bool done = false;
      proxy->queue_transaction(std::move(t), [&](Status st) {
        const std::lock_guard<std::mutex> lk(m);
        out = st;
        done = true;
        cv.notify_all();
      });
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return done; });
    });
    return out;
  }
};

TEST(ProxyMultiOp, MixedSizesAndOmapInOneTransaction) {
  MultiFixture f;
  f.up();
  const std::string big = pattern(5 << 20, 1);     // 3 staged segments
  const std::string mid = pattern(100 << 10, 2);   // 1 staged segment
  os::Transaction t;
  t.create_collection(kColl);
  t.write_full(kColl, {1, "big"}, BufferList::copy_of(big));
  t.write_full(kColl, {1, "mid"}, BufferList::copy_of(mid));
  t.touch(kColl, {1, "meta"});
  t.omap_set(kColl, {1, "meta"}, {{"owner", BufferList::copy_of("multiop")}});
  ASSERT_TRUE(f.commit(std::move(t)).ok());

  run_sim(f.env, [&] {
    EXPECT_EQ(f.store->read(kColl, {1, "big"}, 0, 0)->to_string(), big);
    EXPECT_EQ(f.store->read(kColl, {1, "mid"}, 0, 0)->to_string(), mid);
    EXPECT_EQ(f.store->omap_get(kColl, {1, "meta"})->at("owner").to_string(),
              "multiop");
    // And the proxy's own view agrees.
    auto objs = f.proxy->list_objects(kColl);
    ASSERT_TRUE(objs.ok());
    EXPECT_EQ(objs->size(), 3u);
  });
  f.down();
}

TEST(ProxyMultiOp, WholeTransactionInlineWhenTiny) {
  MultiFixture f;
  f.up();
  os::Transaction t;
  t.create_collection(kColl);
  t.write_full(kColl, {1, "a"}, BufferList::copy_of("aa"));
  t.write_full(kColl, {1, "b"}, BufferList::copy_of("bb"));
  ASSERT_TRUE(f.commit(std::move(t)).ok());
  EXPECT_EQ(f.dpu.dma().jobs_completed(), 0u);  // under inline_write_max
  run_sim(f.env, [&] {
    EXPECT_EQ(f.store->read(kColl, {1, "a"}, 0, 0)->to_string(), "aa");
    EXPECT_EQ(f.store->read(kColl, {1, "b"}, 0, 0)->to_string(), "bb");
  });
  f.down();
}

TEST(ProxyMultiOp, WriteThenRemoveInOneTransaction) {
  MultiFixture f;
  f.up();
  os::Transaction t;
  t.create_collection(kColl);
  t.write_full(kColl, {1, "ephemeral"}, BufferList::copy_of(pattern(3 << 20)));
  t.remove(kColl, {1, "ephemeral"});
  t.write_full(kColl, {1, "kept"}, BufferList::copy_of("still here"));
  ASSERT_TRUE(f.commit(std::move(t)).ok());
  run_sim(f.env, [&] {
    EXPECT_FALSE(f.store->exists(kColl, {1, "ephemeral"}));
    EXPECT_EQ(f.store->read(kColl, {1, "kept"}, 0, 0)->to_string(), "still here");
  });
  f.down();
}

TEST(ProxyMultiOp, FailedTransactionReportsError) {
  MultiFixture f;
  f.up();
  // No create_collection: the host store must reject and the error must
  // travel back across the proxy.
  os::Transaction t;
  t.write_full({9, 9}, {9, "orphan"}, BufferList::copy_of(pattern(3 << 20)));
  const Status st = f.commit(std::move(t));
  EXPECT_EQ(st.code(), Errc::not_found);
  f.down();
}

}  // namespace
}  // namespace doceph::proxy
