// Batched offload hot path: comch doorbell coalescing on the RpcChannel
// (adaptive flush: immediate when idle, coalesced under load, deadline
// bounded) and segment coalescing into scatter-gather DMA passes, plus the
// determinism contract (same seed => byte-identical trace dumps with
// batching on).
#include <gtest/gtest.h>

#include "../test_util.h"
#include "bluestore/bluestore.h"
#include "proxy/host_backend.h"
#include "proxy/proxy_object_store.h"
#include "proxy/rpc_channel.h"

namespace doceph::proxy {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

const os::coll_t kColl{1, 0};

// ---- RPC doorbell coalescing --------------------------------------------------

struct BatchRpcFixture {
  Env env;
  doca::PcieLink link;
  doca::CommChannelRef host_end, dpu_end;
  std::unique_ptr<RpcChannel> server;
  std::unique_ptr<RpcChannel> client;
  event::EventCenter sc{env}, cc{env};
  Thread st, ct;

  explicit BatchRpcFixture(RpcBatchConfig batch = {.enabled = true}) {
    auto pair = doca::CommChannel::create_pair(env, link);
    host_end = pair.first;
    dpu_end = pair.second;
    server = std::make_unique<RpcChannel>(env, host_end);
    client = std::make_unique<RpcChannel>(env, dpu_end);
    server->set_batch_config(batch);
    client->set_batch_config(batch);
    st = Thread(env.keeper(), env.stats(), "rpc-server", nullptr,
                [this] { sc.run(); }, true);
    ct = Thread(env.keeper(), env.stats(), "rpc-client", nullptr,
                [this] { cc.run(); }, true);
  }
  ~BatchRpcFixture() {  // NOLINT(bugprone-exception-escape): test teardown
    sc.stop();
    cc.stop();
  }

  void start_echo() {
    server->set_request_handler([](BufferList req, bool oneway,
                                   RpcChannel::Responder respond,
                                   const trace::TraceContext&) {
      if (!oneway) respond(std::move(req));
    });
    server->start(sc);
    client->start(cc);
  }
};

TEST(RpcBatching, IdleChannelFlushesImmediately) {
  BatchRpcFixture f;
  f.start_echo();
  run_sim(f.env, [&] {
    const Time t0 = f.env.now();
    auto r = f.client->call(BufferList::copy_of("solo"), 1'000'000'000);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r->to_string(), "solo");
    // Adaptive doorbell: an idle channel must not wait out the deadline.
    // The round trip is comch overhead + dispatch, well under 1 ms.
    EXPECT_LT(f.env.now() - t0, 1'000'000);
  });
  // A lone frame is its own flush on both endpoints.
  EXPECT_EQ(f.client->frames_sent(), 1u);
  EXPECT_EQ(f.client->batch_flushes(), 1u);
}

TEST(RpcBatching, ConcurrentCallsCoalesceDoorbells) {
  BatchRpcFixture f;
  f.start_echo();
  constexpr int kCalls = 64;
  run_sim(f.env, [&] {
    std::mutex m;
    CondVar cv(f.env.keeper());
    int done = 0;
    std::vector<std::string> got(kCalls);
    for (int i = 0; i < kCalls; ++i) {
      f.client->call_async(BufferList::copy_of("payload-" + std::to_string(i)),
                           [&, i](Result<BufferList> r) {
                             ASSERT_TRUE(r.ok());
                             const std::lock_guard<std::mutex> lk(m);
                             got[static_cast<std::size_t>(i)] = r->to_string();
                             ++done;
                             cv.notify_all();
                           });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == kCalls; });
    for (int i = 0; i < kCalls; ++i)
      EXPECT_EQ(got[static_cast<std::size_t>(i)], "payload-" + std::to_string(i));
  });
  // Under load, frames must ride shared comch messages on both sides:
  // fewer doorbells than frames is the whole point.
  EXPECT_EQ(f.client->frames_sent(), static_cast<std::uint64_t>(kCalls));
  EXPECT_LT(f.client->batch_flushes(), f.client->frames_sent());
  EXPECT_EQ(f.server->frames_sent(), static_cast<std::uint64_t>(kCalls));
  EXPECT_LT(f.server->batch_flushes(), f.server->frames_sent());
}

TEST(RpcBatching, DeadlineFlushesStragglers) {
  // Server answers 5 ms later, so the client's channel stays busy
  // (inflight > 1) while later requests queue — only the deadline timer
  // can release them.
  BatchRpcFixture f(RpcBatchConfig{.enabled = true, .max_frames = 64,
                                   .flush_delay = 20'000});
  f.server->set_request_handler([&](BufferList req, bool,
                                    RpcChannel::Responder respond,
                                    const trace::TraceContext&) {
    f.env.scheduler().schedule_after(
        5'000'000, [req = std::move(req), respond = std::move(respond)]() mutable {
          respond(std::move(req));
        });
  });
  f.server->start(f.sc);
  f.client->start(f.cc);
  run_sim(f.env, [&] {
    std::mutex m;
    CondVar cv(f.env.keeper());
    int done = 0;
    for (int i = 0; i < 4; ++i) {
      f.client->call_async(BufferList::copy_of("r" + std::to_string(i)),
                           [&](Result<BufferList> r) {
                             ASSERT_TRUE(r.ok());
                             const std::lock_guard<std::mutex> lk(m);
                             ++done;
                             cv.notify_all();
                           });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == 4; });
  });
  EXPECT_EQ(f.client->frames_sent(), 4u);
}

TEST(RpcBatching, LargePayloadStillFragmentsCorrectly) {
  BatchRpcFixture f;
  f.start_echo();
  const std::string big = pattern(64 << 10);
  run_sim(f.env, [&] {
    auto r = f.client->call(BufferList::copy_of(big), 5'000'000'000);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), big);
  });
}

// ---- DMA segment coalescing ---------------------------------------------------

/// ProxyFixture clone with batching knobs threaded through.
struct BatchProxyFixture {
  Env env;
  net::Fabric fabric{env};
  CpuDomain host_cpu{env.keeper(), "host-0", 8, 1.0};
  dpu::DpuDevice dpu{env, fabric, "dpu-0", dpu::DpuProfile{}};
  std::unique_ptr<bluestore::BlueStore> store;
  std::unique_ptr<HostBackendService> backend;
  std::unique_ptr<ProxyObjectStore> proxy;

  explicit BatchProxyFixture(ProxyConfig pcfg) {
    bluestore::BlueStoreConfig scfg;
    scfg.device.size_bytes = 4ull << 30;
    store = std::make_unique<bluestore::BlueStore>(env, &host_cpu, scfg);
    proxy = std::make_unique<ProxyObjectStore>(env, dpu, pcfg);
    HostBackendConfig bcfg;
    bcfg.rpc_batch = pcfg.rpc_batch;
    backend = std::make_unique<HostBackendService>(
        env, host_cpu, *store, dpu.host_comch(), proxy->slots().host_mmap(),
        proxy->slots().slot_size(), bcfg);
  }

  void up() {
    run_sim(env, [&] {
      ASSERT_TRUE(store->mkfs().ok());
      ASSERT_TRUE(store->mount().ok());
      ASSERT_TRUE(backend->start().ok());
      ASSERT_TRUE(proxy->mount().ok());
      os::Transaction t;
      t.create_collection(kColl);
      ASSERT_TRUE(commit_all({std::move(t)}).ok());
    });
  }

  void down() {
    run_sim(env, [&] {
      ASSERT_TRUE(proxy->umount().ok());
      ASSERT_TRUE(store->umount().ok());
      backend->shutdown();
    });
  }

  /// Queue all transactions concurrently; first error wins.
  Status commit_all(std::vector<os::Transaction> txns) {
    std::mutex m;
    CondVar cv(env.keeper());
    std::size_t done = 0;
    Status out;
    for (auto& t : txns) {
      proxy->queue_transaction(std::move(t), [&](Status st) {
        const std::lock_guard<std::mutex> lk(m);
        if (out.ok() && !st.ok()) out = st;
        ++done;
        cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == txns.size(); });
    return out;
  }
};

ProxyConfig batched_config() {
  ProxyConfig cfg;
  cfg.rpc_batch.enabled = true;
  cfg.dma_batch.enabled = true;
  return cfg;
}

TEST(DmaBatching, SmallSegmentsShareSlotPassAndStageRpc) {
  BatchProxyFixture f(batched_config());
  f.up();
  // Requests hash to write workers by collection, so concurrency (and
  // therefore coalescing) needs the objects spread across collections —
  // exactly how PG-sharded OSD traffic reaches the proxy.
  constexpr int kObjects = 16;
  const std::string payload = pattern(64 << 10);  // DMA path, sub-slot
  std::uint64_t write_sg_passes = 0;
  run_sim(f.env, [&] {
    std::vector<os::Transaction> colls;
    for (int i = 0; i < kObjects; ++i) {
      os::Transaction t;
      t.create_collection({1, static_cast<std::uint32_t>(i + 1)});
      colls.push_back(std::move(t));
    }
    ASSERT_TRUE(f.commit_all(std::move(colls)).ok());
    std::vector<os::Transaction> txns;
    for (int i = 0; i < kObjects; ++i) {
      os::Transaction t;
      t.write_full({1, static_cast<std::uint32_t>(i + 1)},
                   {1, "obj" + std::to_string(i)}, BufferList::copy_of(payload));
      txns.push_back(std::move(t));
    }
    ASSERT_TRUE(f.commit_all(std::move(txns)).ok());
    // Snapshot before the read-backs: the read path issues one
    // single-extent engine pass per object, which would mask the write
    // coalescing this test measures.
    write_sg_passes = f.dpu.dma().sg_passes();
    for (int i = 0; i < kObjects; ++i) {
      auto r = f.proxy->read({1, static_cast<std::uint32_t>(i + 1)},
                             {1, "obj" + std::to_string(i)}, 0, 0);
      ASSERT_TRUE(r.ok()) << r.status().to_string();
      EXPECT_EQ(r->to_string(), payload);
    }
  });
  const auto& c = f.proxy->perf_counters();
  EXPECT_GT(c->get(l_dpu_batch_flushes), 0u);
  EXPECT_EQ(c->get(l_dpu_batch_segments), static_cast<std::uint64_t>(kObjects));
  EXPECT_EQ(c->get(l_dpu_batch_bytes),
            static_cast<std::uint64_t>(kObjects) * payload.size());
  // Coalescing must be real: fewer engine passes and fewer flushes than
  // segments (16 x 64 KB fits comfortably inside one 2 MB slot).
  EXPECT_LT(c->get(l_dpu_batch_flushes), static_cast<std::uint64_t>(kObjects));
  EXPECT_LT(write_sg_passes, static_cast<std::uint64_t>(kObjects));
  EXPECT_EQ(f.proxy->dma_bytes(),
            static_cast<std::uint64_t>(kObjects) * payload.size());
  f.down();
}

TEST(DmaBatching, SingleWriteStillCompletesPromptly) {
  BatchProxyFixture f(batched_config());
  f.up();
  const std::string payload = pattern(256 << 10);
  run_sim(f.env, [&] {
    os::Transaction t;
    t.write_full(kColl, {1, "solo"}, BufferList::copy_of(payload));
    ASSERT_TRUE(f.commit_all({std::move(t)}).ok());
    auto r = f.proxy->read(kColl, {1, "solo"}, 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->length(), payload.size());
  });
  const auto& c = f.proxy->perf_counters();
  EXPECT_EQ(c->get(l_dpu_batch_flushes), 1u);
  EXPECT_EQ(c->get(l_dpu_batch_segments), 1u);
  f.down();
}

TEST(DmaBatching, OversizedSegmentsFallThroughToLegacyPath) {
  // 2 MB segments exactly fill a slot; the batcher takes them one per
  // flush, so multi-segment writes still work end to end.
  BatchProxyFixture f(batched_config());
  f.up();
  const std::string big = pattern(5 << 20);  // 3 segments: 2+2+1 MB
  run_sim(f.env, [&] {
    os::Transaction t;
    t.write_full(kColl, {1, "big"}, BufferList::copy_of(big));
    ASSERT_TRUE(f.commit_all({std::move(t)}).ok());
    auto r = f.proxy->read(kColl, {1, "big"}, 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), big);
  });
  f.down();
}

TEST(DmaBatching, PerExtentFaultFailsOneWriteOthersSurvive) {
  BatchProxyFixture f(batched_config());
  f.up();
  const std::string payload = pattern(64 << 10);
  run_sim(f.env, [&] {
    std::vector<os::Transaction> colls;
    for (int i = 0; i < 4; ++i) {
      os::Transaction t;
      t.create_collection({2, static_cast<std::uint32_t>(i)});
      colls.push_back(std::move(t));
    }
    ASSERT_TRUE(f.commit_all(std::move(colls)).ok());
    // Fail extent 1 of the DPU engine's next SG pass: exactly one member
    // of the coalesced batch re-routes through fallback; the rest land.
    // (Spread across collections so the writes actually coalesce.)
    f.env.faults().fire_next("doca.dma_error", 1, "dpu-0#1");
    std::vector<os::Transaction> txns;
    for (int i = 0; i < 4; ++i) {
      os::Transaction t;
      t.write_full({2, static_cast<std::uint32_t>(i)}, {1, "f" + std::to_string(i)},
                   BufferList::copy_of(payload));
      txns.push_back(std::move(t));
    }
    ASSERT_TRUE(f.commit_all(std::move(txns)).ok());
    for (int i = 0; i < 4; ++i) {
      auto r = f.proxy->read({2, static_cast<std::uint32_t>(i)},
                             {1, "f" + std::to_string(i)}, 0, 0);
      ASSERT_TRUE(r.ok()) << r.status().to_string();
      EXPECT_EQ(r->to_string(), payload);
    }
  });
  // The faulted extent went through the RPC fallback path.
  EXPECT_GT(f.proxy->rpc_fallback_bytes(), 0u);
  f.down();
}

// ---- determinism --------------------------------------------------------------

std::string traced_batched_run(std::uint64_t seed) {
  Env env(TimeKeeper::Mode::virtual_time, seed);
  env.tracer().set_sample_every(1);
  net::Fabric fabric(env);
  CpuDomain host_cpu(env.keeper(), "host-0", 8, 1.0);
  dpu::DpuDevice dpu(env, fabric, "dpu-0", dpu::DpuProfile{});
  bluestore::BlueStoreConfig scfg;
  scfg.device.size_bytes = 4ull << 30;
  bluestore::BlueStore store(env, &host_cpu, scfg);
  auto proxy = std::make_unique<ProxyObjectStore>(env, dpu, batched_config());
  HostBackendService backend(env, host_cpu, store, dpu.host_comch(),
                             proxy->slots().host_mmap(),
                             proxy->slots().slot_size());
  run_sim(env, [&] {
    ASSERT_TRUE(store.mkfs().ok());
    ASSERT_TRUE(store.mount().ok());
    ASSERT_TRUE(backend.start().ok());
    ASSERT_TRUE(proxy->mount().ok());
    std::mutex m;
    CondVar cv(env.keeper());
    std::size_t done = 0;
    constexpr int kOps = 8;
    {
      os::Transaction t;
      t.create_collection(kColl);
      proxy->queue_transaction(std::move(t), [&](Status st) {
        ASSERT_TRUE(st.ok());
        const std::lock_guard<std::mutex> lk(m);
        ++done;
        cv.notify_all();
      });
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return done == 1; });
    }
    const std::string payload = pattern(96 << 10);
    for (int i = 0; i < kOps; ++i) {
      os::Transaction t;
      t.set_trace(env.tracer().root_context(0x1000u + static_cast<std::uint64_t>(i)));
      t.write_full(kColl, {1, "d" + std::to_string(i)},
                   BufferList::copy_of(payload));
      proxy->queue_transaction(std::move(t), [&](Status st) {
        ASSERT_TRUE(st.ok());
        const std::lock_guard<std::mutex> lk(m);
        ++done;
        cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == kOps + 1; });
    ASSERT_TRUE(proxy->umount().ok());
    ASSERT_TRUE(store.umount().ok());
    backend.shutdown();
  });
  return env.tracer().dump_chrome_json();
}

TEST(DmaBatching, SameSeedTraceDumpsAreByteIdentical) {
  const std::string a = traced_batched_run(1234);
  const std::string b = traced_batched_run(1234);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("dpu.batch"), std::string::npos);  // batch spans present
  EXPECT_EQ(a, b);
  // A different seed salts ids differently (sanity that the comparison is
  // not vacuous).
  const std::string c = traced_batched_run(99);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace doceph::proxy
