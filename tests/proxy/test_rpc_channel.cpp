#include "proxy/rpc_channel.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace doceph::proxy {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

struct RpcFixture {
  Env env;
  doca::PcieLink link;
  doca::CommChannelRef host_end, dpu_end;
  std::unique_ptr<RpcChannel> server;
  std::unique_ptr<RpcChannel> client;
  event::EventCenter sc{env}, cc{env};
  Thread st, ct;

  RpcFixture() {
    auto pair = doca::CommChannel::create_pair(env, link);
    host_end = pair.first;
    dpu_end = pair.second;
    server = std::make_unique<RpcChannel>(env, host_end);
    client = std::make_unique<RpcChannel>(env, dpu_end);
    st = Thread(env.keeper(), env.stats(), "rpc-server", nullptr, [this] { sc.run(); },
                true);
    ct = Thread(env.keeper(), env.stats(), "rpc-client", nullptr, [this] { cc.run(); },
                true);
  }
  ~RpcFixture() {  // NOLINT(bugprone-exception-escape): test teardown; a throw fails the binary loudly, which is fine
    sc.stop();
    cc.stop();
  }

  void start_echo() {
    server->set_request_handler([](BufferList req, bool oneway,
                                   RpcChannel::Responder respond,
                                   const trace::TraceContext&) {
      if (!oneway) respond(std::move(req));
    });
    server->start(sc);
    client->start(cc);
  }
};

TEST(RpcChannel, SmallCallRoundTrip) {
  RpcFixture f;
  f.start_echo();
  run_sim(f.env, [&] {
    auto r = f.client->call(BufferList::copy_of("hello rpc"), 1'000'000'000);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r->to_string(), "hello rpc");
  });
}

TEST(RpcChannel, LargePayloadFragmentsAndReassembles) {
  RpcFixture f;
  f.start_echo();
  // 64 KiB >> the ~4 KB comch cap: ~16 fragments each way.
  const std::string big = pattern(64 << 10);
  run_sim(f.env, [&] {
    auto r = f.client->call(BufferList::copy_of(big), 5'000'000'000);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->length(), big.size());
    EXPECT_EQ(r->to_string(), big);
  });
}

TEST(RpcChannel, ConcurrentCallsMatchByRequestId) {
  RpcFixture f;
  f.start_echo();
  run_sim(f.env, [&] {
    constexpr int kCalls = 32;
    std::mutex m;
    CondVar cv(f.env.keeper());
    int done = 0;
    std::vector<std::string> got(kCalls);
    for (int i = 0; i < kCalls; ++i) {
      f.client->call_async(BufferList::copy_of("payload-" + std::to_string(i)),
                           [&, i](Result<BufferList> r) {
                             ASSERT_TRUE(r.ok());
                             const std::lock_guard<std::mutex> lk(m);
                             got[static_cast<std::size_t>(i)] = r->to_string();
                             ++done;
                             cv.notify_all();
                           });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == kCalls; });
    for (int i = 0; i < kCalls; ++i)
      EXPECT_EQ(got[static_cast<std::size_t>(i)], "payload-" + std::to_string(i));
  });
}

TEST(RpcChannel, OnewayNeverGetsResponder) {
  RpcFixture f;
  std::atomic<int> oneway_seen{0};
  std::atomic<bool> had_responder{true};
  f.server->set_request_handler([&](BufferList, bool oneway,
                                    RpcChannel::Responder respond,
                                    const trace::TraceContext&) {
    if (oneway) {
      oneway_seen.fetch_add(1);
      had_responder.store(static_cast<bool>(respond));
    }
  });
  f.server->start(f.sc);
  f.client->start(f.cc);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.client->notify(BufferList::copy_of("fire and forget")).ok());
    f.env.keeper().sleep_for(10'000'000);
  });
  EXPECT_EQ(oneway_seen.load(), 1);
  EXPECT_FALSE(had_responder.load());
}

TEST(RpcChannel, CallTimesOutWithoutServer) {
  RpcFixture f;
  // Server side never installs a handler (requests are dropped with a log).
  f.server->start(f.sc);
  f.client->start(f.cc);
  run_sim(f.env, [&] {
    const Time t0 = f.env.now();
    auto r = f.client->call(BufferList::copy_of("void"), 50'000'000);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Errc::timed_out);
    EXPECT_GE(f.env.now() - t0, 50'000'000);
  });
}

TEST(RpcChannel, DelayedResponseCompletesLater) {
  RpcFixture f;
  // Server answers 20 ms later from the scheduler (like a commit callback).
  f.server->set_request_handler([&](BufferList req, bool,
                                    RpcChannel::Responder respond,
                                    const trace::TraceContext&) {
    f.env.scheduler().schedule_after(
        20'000'000, [req = std::move(req), respond = std::move(respond)]() mutable {
          respond(std::move(req));
        });
  });
  f.server->start(f.sc);
  f.client->start(f.cc);
  run_sim(f.env, [&] {
    const Time t0 = f.env.now();
    auto r = f.client->call(BufferList::copy_of("slow"), 1'000'000'000);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(f.env.now() - t0, 20'000'000);
    EXPECT_EQ(r->to_string(), "slow");
  });
}

TEST(RpcChannel, BytesSentAccounting) {
  RpcFixture f;
  f.start_echo();
  run_sim(f.env, [&] {
    (void)f.client->call(BufferList::copy_of(pattern(10'000)), 1'000'000'000);
  });
  EXPECT_GE(f.client->bytes_sent(), 10'000u);
  EXPECT_GE(f.server->bytes_sent(), 10'000u);  // the echo
}

}  // namespace
}  // namespace doceph::proxy
