#include <gtest/gtest.h>

#include "../test_util.h"
#include "proxy/fallback.h"
#include "proxy/slot_pool.h"

namespace doceph::proxy {
namespace {

using namespace doceph::sim;
using doceph::testing::run_sim;

TEST(SlotPool, AcquireReleaseCycle) {
  Env env;
  SlotPool pool(env, 2, 4096);
  EXPECT_EQ(pool.capacity(), 2);
  EXPECT_EQ(pool.slot_size(), 4096u);
  run_sim(env, [&] {
    const int a = pool.acquire();
    const int b = pool.acquire();
    EXPECT_NE(a, b);
    EXPECT_FALSE(pool.try_acquire().has_value());
    pool.release(a);
    auto c = pool.try_acquire();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, a);  // FIFO recycle
    pool.release(b);
    pool.release(*c);
  });
  EXPECT_EQ(pool.total_wait_ns(), 0);
}

TEST(SlotPool, BlockedAcquireWaitsAndAccounts) {
  Env env;
  SlotPool pool(env, 1, 4096);
  run_sim(env, [&] {
    const int a = pool.acquire();
    // Free the slot 5 ms from now.
    env.scheduler().schedule_after(5'000'000, [&, a] { pool.release(a); });
    const Time t0 = env.now();
    const int b = pool.acquire();  // blocks until the release
    EXPECT_EQ(env.now() - t0, 5'000'000);
    pool.release(b);
  });
  EXPECT_EQ(pool.total_wait_ns(), 5'000'000);
}

TEST(SlotPool, BuffersAreDisjointAndPaired) {
  Env env;
  SlotPool pool(env, 4, 1024);
  for (int i = 0; i < 4; ++i) {
    auto d = pool.dpu_buf(i, 1024);
    auto h = pool.host_buf(i, 1024);
    ASSERT_TRUE(d.valid());
    ASSERT_TRUE(h.valid());
    EXPECT_EQ(d.off, static_cast<std::size_t>(i) * 1024);
    EXPECT_EQ(h.off, d.off);
    EXPECT_NE(d.mmap.get(), h.mmap.get());  // DPU vs host memory
  }
}

TEST(SlotPool, ManyContendersAllServed) {
  Env env;
  SlotPool pool(env, 2, 64);
  std::atomic<int> served{0};
  run_sim(env, [&] {
    auto hold = TimeKeeper::AdvanceHold(env.keeper());
    std::vector<Thread> workers;
    for (int i = 0; i < 10; ++i) {
      workers.push_back(env.spawn("w" + std::to_string(i), nullptr, [&] {
        const int s = pool.acquire();
        env.keeper().sleep_for(1'000'000);
        pool.release(s);
        served.fetch_add(1);
      }));
    }
    hold.release();
    workers.clear();
  });
  EXPECT_EQ(served.load(), 10);
  // 10 holders x 1ms over 2 slots => at least 8 slot-waits happened.
  EXPECT_GE(pool.total_wait_ns(), 3'000'000);
}

TEST(FallbackManager, StartsEnabled) {
  FallbackManager f(1'000'000);
  EXPECT_TRUE(f.dma_enabled());
  EXPECT_EQ(f.choose(0), FallbackManager::Path::dma);
  EXPECT_EQ(f.failures(), 0u);
}

TEST(FallbackManager, FailureTripsCooldown) {
  FallbackManager f(1'000'000);  // 1 ms cooldown
  f.on_dma_failure(100);
  EXPECT_FALSE(f.dma_enabled());
  EXPECT_EQ(f.failures(), 1u);
  // During cooldown everything routes to RPC.
  EXPECT_EQ(f.choose(500), FallbackManager::Path::rpc);
  EXPECT_EQ(f.choose(1'000'000), FallbackManager::Path::rpc);
}

TEST(FallbackManager, ProbeAfterExpiryThenRecovery) {
  FallbackManager f(1'000'000);
  f.on_dma_failure(0);
  // Past expiry: exactly ONE caller gets the probe; others stay on RPC.
  EXPECT_EQ(f.choose(2'000'000), FallbackManager::Path::probe);
  EXPECT_EQ(f.choose(2'000'001), FallbackManager::Path::rpc);
  f.on_dma_success();
  EXPECT_TRUE(f.dma_enabled());
  EXPECT_EQ(f.choose(2'000'002), FallbackManager::Path::dma);
}

TEST(FallbackManager, FailedProbeExtendsCooldown) {
  FallbackManager f(1'000'000);
  f.on_dma_failure(0);
  EXPECT_EQ(f.choose(1'500'000), FallbackManager::Path::probe);
  f.on_dma_failure(1'500'000);  // probe failed
  EXPECT_EQ(f.failures(), 2u);
  EXPECT_EQ(f.choose(2'000'000), FallbackManager::Path::rpc);  // new expiry 2.5ms
  EXPECT_EQ(f.choose(2'600'000), FallbackManager::Path::probe);
}

TEST(FallbackManager, RepeatedFailuresCount) {
  FallbackManager f(10);
  for (int i = 0; i < 5; ++i) f.on_dma_failure(i * 100);
  EXPECT_EQ(f.failures(), 5u);
}

}  // namespace
}  // namespace doceph::proxy
