#include "osd/op_tracker.h"

#include <gtest/gtest.h>

#include <string>

namespace doceph::osd {
namespace {

TEST(TrackedOp, EventTimesFirstAndLast) {
  TrackedOp op("osd_op(write obj)", 100);
  EXPECT_EQ(op.event_time("queued"), -1);
  EXPECT_EQ(op.last_event_time("queued"), -1);

  op.mark_event("queued", 150);
  op.mark_event("repl_ack", 400);
  op.mark_event("repl_ack", 700);

  EXPECT_EQ(op.event_time("queued"), 150);
  EXPECT_EQ(op.event_time("repl_ack"), 400);
  EXPECT_EQ(op.last_event_time("repl_ack"), 700);
  EXPECT_EQ(op.description(), "osd_op(write obj)");
  EXPECT_EQ(op.initiated_at(), 100);
}

TEST(TrackedOp, StageBreakdownOrderedWrite) {
  TrackedOp op("osd_op(write_full obj)", 1000);
  op.mark_event("queued", 1200);        // messenger: 200
  op.mark_event("dequeued", 1500);      // queue: 300
  op.mark_event("sub_op_sent", 1600);
  op.mark_event("store_submit", 1700);
  op.mark_event("commit", 2500);        // objectstore: 1000
  op.mark_event("repl_ack", 2400);      // before commit: no repl credit
  op.mark_event("repl_ack", 3100);      // replication: 600
  op.mark_event("reply_sent", 3300);    // reply: 200

  const auto bd = op.stage_breakdown();
  EXPECT_EQ(bd.messenger_ns, 200u);
  EXPECT_EQ(bd.queue_ns, 300u);
  EXPECT_EQ(bd.objectstore_ns, 1000u);
  EXPECT_EQ(bd.replication_ns, 600u);
  EXPECT_EQ(bd.reply_ns, 200u);
  EXPECT_EQ(bd.total_ns, 2300u);
  EXPECT_EQ(bd.sum(), bd.total_ns);
}

TEST(TrackedOp, StageSumEqualsTotalEvenWithMissingEvents) {
  // Reads never mark sub_op_sent/repl_ack; partially-tracked ops may lack
  // more. The clamped chain must keep sum(stages) == total regardless.
  TrackedOp read_op("osd_op(read obj)", 500);
  read_op.mark_event("queued", 600);
  read_op.mark_event("dequeued", 650);
  read_op.mark_event("commit", 900);
  read_op.mark_event("reply_sent", 950);
  auto bd = read_op.stage_breakdown();
  EXPECT_EQ(bd.replication_ns, 0u);
  EXPECT_EQ(bd.sum(), bd.total_ns);
  EXPECT_EQ(bd.total_ns, 450u);

  TrackedOp bare("osd_op(stat obj)", 10);
  bare.mark_event("reply_sent", 35);
  bd = bare.stage_breakdown();
  EXPECT_EQ(bd.sum(), bd.total_ns);
  EXPECT_EQ(bd.total_ns, 25u);

  TrackedOp nothing("osd_op(unknown obj)", 10);
  bd = nothing.stage_breakdown();
  EXPECT_EQ(bd.sum(), bd.total_ns);
  EXPECT_EQ(bd.total_ns, 0u);
}

TEST(OpTracker, InFlightAccounting) {
  OpTracker tracker;
  EXPECT_EQ(tracker.ops_in_flight(), 0u);

  auto a = tracker.create_op("op_a", 10);
  auto b = tracker.create_op("op_b", 20);
  EXPECT_EQ(tracker.ops_in_flight(), 2u);

  tracker.finish_op(a, 100);
  EXPECT_EQ(tracker.ops_in_flight(), 1u);
  EXPECT_EQ(tracker.history_count(), 1u);

  tracker.finish_op(b, 200);
  EXPECT_EQ(tracker.ops_in_flight(), 0u);
  EXPECT_EQ(tracker.history_count(), 2u);
}

TEST(OpTracker, HistoricRingEvictsOldest) {
  OpTracker tracker(OpTracker::Config{.history_size = 3, .slow_threshold = 0});
  for (int i = 0; i < 5; ++i) {
    auto op = tracker.create_op("op_" + std::to_string(i), i * 10);
    tracker.finish_op(op, i * 10 + 5);
  }
  EXPECT_EQ(tracker.history_count(), 3u);

  std::vector<std::string> names;
  tracker.for_each_historic(
      [&](const TrackedOp& op) { names.push_back(op.description()); });
  ASSERT_EQ(names.size(), 3u);
  // Oldest first, and the two oldest completions were evicted.
  EXPECT_EQ(names[0], "op_2");
  EXPECT_EQ(names[1], "op_3");
  EXPECT_EQ(names[2], "op_4");
}

TEST(OpTracker, SlowThresholdFiltersHistory) {
  OpTracker tracker(
      OpTracker::Config{.history_size = 10, .slow_threshold = 100});
  auto fast = tracker.create_op("fast", 0);
  tracker.finish_op(fast, 50);  // below threshold: dropped
  auto slow = tracker.create_op("slow", 0);
  tracker.finish_op(slow, 500);  // kept
  EXPECT_EQ(tracker.history_count(), 1u);
  tracker.for_each_historic(
      [](const TrackedOp& op) { EXPECT_EQ(op.description(), "slow"); });
}

TEST(OpTracker, DumpsAreWellFormed) {
  OpTracker tracker;
  auto live = tracker.create_op("live_op", 100);
  live->mark_event("queued", 120);

  const std::string in_flight = tracker.dump_ops_in_flight();
  EXPECT_NE(in_flight.find("\"ops_in_flight\":1"), std::string::npos);
  EXPECT_NE(in_flight.find("live_op"), std::string::npos);
  EXPECT_NE(in_flight.find("\"queued\""), std::string::npos);

  live->mark_event("reply_sent", 300);
  tracker.finish_op(live, 300);
  const std::string historic = tracker.dump_historic_ops();
  EXPECT_NE(historic.find("live_op"), std::string::npos);
  EXPECT_NE(historic.find("\"stages\""), std::string::npos);
  EXPECT_NE(historic.find("\"duration_ns\":200"), std::string::npos);

  tracker.clear_history();
  EXPECT_EQ(tracker.history_count(), 0u);
}

TEST(OpTracker, FinishIsIdempotentForUnknownOp) {
  OpTracker tracker;
  auto op = tracker.create_op("op", 0);
  tracker.finish_op(op, 10);
  tracker.finish_op(op, 20);  // already retired: must not duplicate history
  EXPECT_EQ(tracker.history_count(), 1u);
}

}  // namespace
}  // namespace doceph::osd
