// Client-library semantics against a live (baseline) cluster: aio
// completion behaviour, error propagation, object lifecycle corner cases,
// and the bench harness itself.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "client/rados_bench.h"
#include "cluster/cluster.h"

namespace doceph::client {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

struct ClientFixture {
  Env env;
  cluster::Cluster cl;

  ClientFixture()
      : cl(env, [] {
          auto cfg = cluster::ClusterConfig::paper_testbed(
              cluster::DeployMode::baseline, cluster::NetworkKind::gbe_100, true);
          cfg.pg_num = 16;
          return cfg;
        }()) {}
};

TEST(Client, AioCompletionLifecycle) {
  ClientFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.cl.start().ok());
    auto io = f.cl.client().io_ctx(1);
    auto c = io.aio_write_full("obj", BufferList::copy_of(pattern(1 << 20)));
    // wait() is idempotent and status() is stable afterwards.
    EXPECT_TRUE(c->wait().ok());
    EXPECT_TRUE(c->complete());
    EXPECT_TRUE(c->status().ok());
    EXPECT_TRUE(c->wait().ok());
    f.cl.stop();
  });
}

TEST(Client, ReadOfMissingObjectFails) {
  ClientFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.cl.start().ok());
    auto io = f.cl.client().io_ctx(1);
    EXPECT_EQ(io.read("ghost", 0, 0).status().code(), Errc::not_found);
    EXPECT_EQ(io.stat("ghost").status().code(), Errc::not_found);
    f.cl.stop();
  });
}

TEST(Client, RemoveIsIdempotentAcrossStates) {
  ClientFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.cl.start().ok());
    auto io = f.cl.client().io_ctx(1);
    ASSERT_TRUE(io.write_full("o", BufferList::copy_of("x")).ok());
    EXPECT_TRUE(io.remove("o").ok());
    EXPECT_EQ(io.read("o", 0, 0).status().code(), Errc::not_found);
    // Removing a missing object commits an (empty) remove — like rados.
    EXPECT_TRUE(io.remove("o").ok());
    f.cl.stop();
  });
}

TEST(Client, PartialWriteThenReadBack) {
  ClientFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.cl.start().ok());
    auto io = f.cl.client().io_ctx(1);
    ASSERT_TRUE(io.write_full("p", BufferList::copy_of(std::string(1000, 'a'))).ok());
    ASSERT_TRUE(io.write("p", 500, BufferList::copy_of(std::string(100, 'b'))).ok());
    auto r = io.read("p", 490, 120);
    ASSERT_TRUE(r.ok());
    std::string expect = std::string(10, 'a') + std::string(100, 'b') +
                         std::string(10, 'a');
    EXPECT_EQ(r->to_string(), expect);
    // Write past the end extends with zeros.
    ASSERT_TRUE(io.write("p", 2000, BufferList::copy_of("tail")).ok());
    auto st = io.stat("p");
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->size, 2004u);
    f.cl.stop();
  });
}

TEST(Client, ZeroByteObject) {
  ClientFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.cl.start().ok());
    auto io = f.cl.client().io_ctx(1);
    ASSERT_TRUE(io.write_full("empty", BufferList{}).ok());
    auto st = io.stat("empty");
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->size, 0u);
    auto r = io.read("empty", 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->empty());
    f.cl.stop();
  });
}

TEST(Client, ManyAioCompletionsResolveIndependently) {
  ClientFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.cl.start().ok());
    auto io = f.cl.client().io_ctx(1);
    std::vector<AioCompletionRef> cs;
    for (int i = 0; i < 24; ++i)
      cs.push_back(io.aio_write_full("m" + std::to_string(i),
                                     BufferList::copy_of(pattern(64 << 10,
                                                                 static_cast<unsigned>(i)))));
    // Wait in reverse order: completions are independent of wait order.
    for (int i = 23; i >= 0; --i) EXPECT_TRUE(cs[static_cast<std::size_t>(i)]->wait().ok());
    // Read a sample back via aio too.
    auto rc = io.aio_read("m7", 0, 0);
    EXPECT_TRUE(rc->wait().ok());
    EXPECT_EQ(rc->data().to_string(), pattern(64 << 10, 7));
    f.cl.stop();
  });
}

TEST(Client, BenchProducesConsistentAccounting) {
  ClientFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.cl.start().ok());
    BenchConfig cfg;
    cfg.concurrency = 4;
    cfg.object_size = 256 << 10;
    cfg.duration = 500'000'000;  // 0.5 s
    RadosBench bench(f.cl.client(), cfg);
    const auto r = bench.run(&f.cl.client_cpu());
    EXPECT_EQ(r.ops, r.latency.count);
    EXPECT_GT(r.ops, 0u);
    EXPECT_GE(r.seconds, 0.5);
    EXPECT_GT(r.avg_latency_s(), 0.0);
    EXPECT_GE(r.p99_latency_s(), r.avg_latency_s() * 0.5);
    EXPECT_NEAR(r.iops() * r.avg_latency_s(), 4.0, 2.0);  // Little's law, c=4
    f.cl.stop();
  });
}

TEST(Client, MonCommandRoundTrip) {
  ClientFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.cl.start().ok());
    auto ok = f.cl.client().mon_command({"create_pool", "7", "extra", "8", "2"});
    EXPECT_TRUE(ok.ok());
    auto bad = f.cl.client().mon_command({"no-such-command"});
    EXPECT_FALSE(bad.ok());
    // The new pool is usable.
    auto io = f.cl.client().io_ctx(7);
    EXPECT_TRUE(io.write_full("in-new-pool", BufferList::copy_of("y")).ok());
    f.cl.stop();
  });
}

}  // namespace
}  // namespace doceph::client
