#include "mon/monitor.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "mon/mon_client.h"

namespace doceph::mon {
namespace {

using namespace doceph::sim;
using doceph::testing::run_sim;

/// Monitor + one client endpoint whose dispatcher feeds a MonClient.
struct MonFixture : msgr::Dispatcher {
  Env env;
  net::Fabric fabric{env};
  net::NetNode& mon_node;
  net::NetNode& client_node;
  Monitor mon;
  msgr::Messenger client_msgr;
  MonClient monc;

  MonFixture(int num_osds = 2)
      : mon_node(fabric.add_node("mon-host")),
        client_node(fabric.add_node("client-host")),
        mon(env, fabric, mon_node, nullptr, num_osds),
        client_msgr(env, fabric, client_node, nullptr, "client.0"),
        monc(env, client_msgr, net::Address{mon_node.id(), 6789}) {
    client_msgr.set_dispatcher(this);
    EXPECT_TRUE(mon.start().ok());
    client_msgr.start();
  }

  ~MonFixture() override {  // NOLINT(bugprone-exception-escape): test teardown; a throw fails the binary loudly, which is fine
    client_msgr.shutdown();
    mon.shutdown();
  }

  void ms_dispatch(const msgr::MessageRef& m) override {
    EXPECT_TRUE(monc.handle_message(m)) << msg_type_name(m->type());
  }
};

TEST(Monitor, InitialMapFetch) {
  MonFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.monc.init().ok());
    EXPECT_EQ(f.monc.epoch(), 1u);
    EXPECT_EQ(f.monc.map().num_osds(), 2);
    EXPECT_FALSE(f.monc.map().is_up(0));
  });
}

TEST(Monitor, BootMarksOsdUpAndPublishes) {
  MonFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.monc.init().ok());
    ASSERT_TRUE(f.monc.subscribe().ok());
    ASSERT_TRUE(f.monc.send_boot(0, net::Address{7, 6800}).ok());
    f.monc.wait_for_epoch(2);
    EXPECT_TRUE(f.monc.map().is_up(0));
    EXPECT_EQ(f.monc.map().osd(0).addr, (net::Address{7, 6800}));
  });
}

TEST(Monitor, CreatePoolCommand) {
  MonFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.monc.init().ok());
    ASSERT_TRUE(f.monc.subscribe().ok());
    auto r = f.monc.command({"create_pool", "1", "rbd", "32", "2"});
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    f.monc.wait_for_epoch(2);
    ASSERT_NE(f.monc.map().pool(1), nullptr);
    EXPECT_EQ(f.monc.map().pool(1)->pg_num, 32u);
    EXPECT_EQ(f.monc.map().pool(1)->size, 2u);
  });
}

TEST(Monitor, UnknownCommandFails) {
  MonFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.monc.init().ok());
    auto r = f.monc.command({"bogus"});
    EXPECT_FALSE(r.ok());
  });
}

TEST(Monitor, FailureReportMarksDown) {
  MonFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.monc.init().ok());
    ASSERT_TRUE(f.monc.subscribe().ok());
    ASSERT_TRUE(f.monc.send_boot(0, net::Address{7, 6800}).ok());
    ASSERT_TRUE(f.monc.send_boot(1, net::Address{8, 6800}).ok());
    f.monc.wait_for_epoch(3);
    ASSERT_TRUE(f.monc.report_failure(1, 0).ok());
    f.monc.wait_for_epoch(4);
    EXPECT_FALSE(f.monc.map().is_up(1));
    EXPECT_TRUE(f.monc.map().is_up(0));
  });
}

TEST(Monitor, FailureNeedsEnoughReporters) {
  MonitorConfig cfg;
  cfg.failure_reports_needed = 2;
  Env env;
  net::Fabric fabric{env};
  auto& mn = fabric.add_node("mon-host");
  auto& cn = fabric.add_node("client-host");
  Monitor mon(env, fabric, mn, nullptr, 3, cfg);
  msgr::Messenger cm(env, fabric, cn, nullptr, "client.0");
  MonClient monc(env, cm, net::Address{mn.id(), 6789});
  struct D : msgr::Dispatcher {
    MonClient* mc;
    void ms_dispatch(const msgr::MessageRef& m) override { mc->handle_message(m); }
  } disp;
  disp.mc = &monc;
  cm.set_dispatcher(&disp);
  ASSERT_TRUE(mon.start().ok());
  cm.start();
  run_sim(env, [&] {
    ASSERT_TRUE(monc.init().ok());
    ASSERT_TRUE(monc.subscribe().ok());
    ASSERT_TRUE(monc.send_boot(2, net::Address{9, 6800}).ok());
    monc.wait_for_epoch(2);
    ASSERT_TRUE(monc.report_failure(2, 0).ok());
    // One reporter is not enough; give the message time to arrive.
    env.keeper().sleep_for(10_ms);
    EXPECT_TRUE(monc.map().is_up(2));
    ASSERT_TRUE(monc.report_failure(2, 1).ok());
    monc.wait_for_epoch(3);
    EXPECT_FALSE(monc.map().is_up(2));
  });
  cm.shutdown();
  mon.shutdown();
}

TEST(Monitor, RebootAfterFailureClearsReports) {
  MonFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.monc.init().ok());
    ASSERT_TRUE(f.monc.subscribe().ok());
    ASSERT_TRUE(f.monc.send_boot(0, net::Address{7, 6800}).ok());
    f.monc.wait_for_epoch(2);
    ASSERT_TRUE(f.monc.report_failure(0, 1).ok());
    f.monc.wait_for_epoch(3);
    EXPECT_FALSE(f.monc.map().is_up(0));
    ASSERT_TRUE(f.monc.send_boot(0, net::Address{7, 6801}).ok());
    f.monc.wait_for_epoch(4);
    EXPECT_TRUE(f.monc.map().is_up(0));
    EXPECT_EQ(f.monc.map().osd(0).addr, (net::Address{7, 6801}));
  });
}

TEST(Monitor, MonClientIgnoresStaleEpochs) {
  MonFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.monc.init().ok());
    const auto e = f.monc.epoch();
    // A second explicit fetch of the same epoch must not regress anything.
    ASSERT_TRUE(f.monc.init().ok());
    EXPECT_EQ(f.monc.epoch(), e);
  });
}

TEST(Monitor, MapCallbackFires) {
  MonFixture f;
  std::atomic<int> cb_epochs{0};
  f.monc.set_map_callback([&](const crush::OSDMap&) { cb_epochs.fetch_add(1); });
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.monc.init().ok());
    ASSERT_TRUE(f.monc.subscribe().ok());
    ASSERT_TRUE(f.monc.send_boot(0, net::Address{7, 6800}).ok());
    f.monc.wait_for_epoch(2);
  });
  EXPECT_GE(cb_epochs.load(), 2);  // initial + boot publication
}

}  // namespace
}  // namespace doceph::mon
