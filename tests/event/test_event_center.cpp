#include "event/event_center.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/env.h"

namespace doceph::event {
namespace {

using namespace doceph::sim;

struct LoopFixture {
  Env env;
  EventCenter center{env};
  Thread loop;

  LoopFixture()
      : loop(env.keeper(), env.stats(), "loop", nullptr, [this] { center.run(); },
             /*daemon=*/true) {}
  ~LoopFixture() {  // NOLINT(bugprone-exception-escape): test teardown; a throw fails the binary loudly, which is fine
    center.stop();
    loop.join();
  }
};

TEST(EventCenter, DispatchRunsInLoopThread) {
  LoopFixture f;
  std::atomic<bool> ran{false};
  std::atomic<bool> in_loop{false};
  f.center.dispatch([&] {
    in_loop.store(f.center.in_loop_thread());
    ran.store(true);
  });
  // Poll (real time) until the handler ran; the loop is a daemon thread.
  while (!ran.load()) std::this_thread::yield();
  EXPECT_TRUE(in_loop.load());
  EXPECT_FALSE(f.center.in_loop_thread());
}

TEST(EventCenter, DispatchPreservesOrder) {
  LoopFixture f;
  std::vector<int> order;
  std::atomic<bool> done{false};
  for (int i = 0; i < 10; ++i) {
    f.center.dispatch([&order, i] { order.push_back(i); });
  }
  f.center.dispatch([&] { done.store(true); });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventCenter, TimerFiresAtSimTime) {
  LoopFixture f;
  std::atomic<Time> fired_at{-1};
  f.center.add_timer(15_ms, [&] { fired_at.store(f.env.now()); });
  // Advance virtual time from a sim thread.
  Thread t = f.env.spawn("sleeper", nullptr, [&] { f.env.keeper().sleep_for(50_ms); });
  t.join();
  while (fired_at.load() < 0) std::this_thread::yield();
  EXPECT_EQ(fired_at.load(), 15_ms);
}

TEST(EventCenter, TimersFireInDeadlineOrder) {
  LoopFixture f;
  std::vector<Time> seq;
  std::atomic<int> remaining{3};
  auto hold = f.env.hold();
  f.center.add_timer(30_ms, [&] {
    seq.push_back(f.env.now());
    remaining.fetch_sub(1);
  });
  f.center.add_timer(10_ms, [&] {
    seq.push_back(f.env.now());
    remaining.fetch_sub(1);
  });
  f.center.add_timer(20_ms, [&] {
    seq.push_back(f.env.now());
    remaining.fetch_sub(1);
  });
  hold.release();
  Thread t = f.env.spawn("sleeper", nullptr, [&] { f.env.keeper().sleep_for(100_ms); });
  t.join();
  while (remaining.load() > 0) std::this_thread::yield();
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq, (std::vector<Time>{10_ms, 20_ms, 30_ms}));
}

TEST(EventCenter, CancelTimer) {
  LoopFixture f;
  std::atomic<bool> fired{false};
  auto hold = f.env.hold();
  const auto id = f.center.add_timer(10_ms, [&] { fired.store(true); });
  EXPECT_TRUE(f.center.cancel_timer(id));
  EXPECT_FALSE(f.center.cancel_timer(id));
  hold.release();
  Thread t = f.env.spawn("sleeper", nullptr, [&] { f.env.keeper().sleep_for(50_ms); });
  t.join();
  EXPECT_FALSE(fired.load());
}

TEST(EventCenter, TimerCanRearmItself) {
  LoopFixture f;
  std::atomic<int> count{0};
  std::function<void()> tick = [&] {
    if (count.fetch_add(1) + 1 < 5) f.center.add_timer(10_ms, tick);
  };
  f.center.add_timer(10_ms, tick);
  Thread t = f.env.spawn("sleeper", nullptr, [&] { f.env.keeper().sleep_for(1_s); });
  t.join();
  while (count.load() < 5) std::this_thread::yield();
  EXPECT_EQ(count.load(), 5);
}

TEST(EventCenter, StopDrainsPendingDispatches) {
  Env env;
  EventCenter center(env);
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) center.dispatch([&] { ran.fetch_add(1); });
  center.stop();
  Thread loop(env.keeper(), env.stats(), "loop", nullptr, [&] { center.run(); },
              /*daemon=*/true);
  loop.join();
  EXPECT_EQ(ran.load(), 5);
}

TEST(EventCenter, DispatchFromHandler) {
  LoopFixture f;
  std::atomic<bool> second{false};
  f.center.dispatch([&] { f.center.dispatch([&] { second.store(true); }); });
  while (!second.load()) std::this_thread::yield();
  SUCCEED();
}

}  // namespace
}  // namespace doceph::event
