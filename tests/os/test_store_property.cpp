// Differential property tests: BlueStore-lite must agree with the trivial
// MemStore reference on a long randomized operation stream — including
// across a remount and across a simulated crash boundary (where only
// committed transactions may be compared).
#include <gtest/gtest.h>

#include <random>

#include "../test_util.h"
#include "bluestore/bluestore.h"
#include "os/mem_store.h"

namespace doceph::os {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

const coll_t kColl{1, 0};

/// Drives the same random transaction stream into both stores and checks
/// observable state equality.
class StorePropertyTest : public ::testing::TestWithParam<unsigned> {
 protected:
  static bluestore::BlueStoreConfig cfg() {
    bluestore::BlueStoreConfig c;
    c.device.size_bytes = 1ull << 30;
    c.wal_len = 4 << 20;
    c.inline_threshold = 8 << 10;  // exercise both inline and extent paths
    return c;
  }

  static Transaction random_txn(std::mt19937& rng, int max_obj) {
    Transaction t;
    const auto obj = [&] {
      return ghobject_t{1, "o" + std::to_string(rng() % static_cast<unsigned>(max_obj))};
    };
    switch (rng() % 8) {
      case 0:
        t.touch(kColl, obj());
        break;
      case 1:  // small write_full (inline path)
        t.write_full(kColl, obj(),
                     BufferList::copy_of(pattern(1 + rng() % 4096, rng())));
        break;
      case 2:  // large write_full (extent path)
        t.write_full(kColl, obj(),
                     BufferList::copy_of(pattern(16'000 + rng() % 200'000, rng())));
        break;
      case 3:  // partial write (RMW)
        t.write(kColl, obj(), rng() % 10'000,
                BufferList::copy_of(pattern(1 + rng() % 8192, rng())));
        break;
      case 4:
        t.zero(kColl, obj(), rng() % 8192, 1 + rng() % 8192);
        break;
      case 5:
        t.truncate(kColl, obj(), rng() % 20'000);
        break;
      case 6:
        t.remove(kColl, obj());
        break;
      case 7:
        t.omap_set(kColl, obj(),
                   {{"k" + std::to_string(rng() % 4),
                     BufferList::copy_of(pattern(1 + rng() % 64, rng()))}});
        break;
    }
    return t;
  }

  static void expect_equal(ObjectStore& a, ObjectStore& b, int max_obj,
                           const char* what) {
    auto la = a.list_objects(kColl);
    auto lb = b.list_objects(kColl);
    ASSERT_TRUE(la.ok() && lb.ok()) << what;
    EXPECT_EQ(*la, *lb) << what;
    for (int i = 0; i < max_obj; ++i) {
      const ghobject_t oid{1, "o" + std::to_string(i)};
      ASSERT_EQ(a.exists(kColl, oid), b.exists(kColl, oid)) << what << " " << i;
      if (!a.exists(kColl, oid)) continue;
      auto ra = a.read(kColl, oid, 0, 0);
      auto rb = b.read(kColl, oid, 0, 0);
      ASSERT_TRUE(ra.ok() && rb.ok()) << what << " " << i;
      EXPECT_TRUE(*ra == *rb) << what << " obj " << i << " sizes " << ra->length()
                              << " vs " << rb->length();
      auto sa = a.stat(kColl, oid);
      auto sb = b.stat(kColl, oid);
      EXPECT_EQ(sa->size, sb->size) << what << " " << i;
      auto oa = a.omap_get(kColl, oid);
      auto ob = b.omap_get(kColl, oid);
      ASSERT_TRUE(oa.ok() && ob.ok());
      EXPECT_EQ(oa->size(), ob->size()) << what << " " << i;
      for (const auto& [k, v] : *oa) {
        ASSERT_TRUE(ob->contains(k)) << what;
        EXPECT_TRUE(v == ob->at(k)) << what;
      }
    }
  }
};

TEST_P(StorePropertyTest, RandomOpsMatchReferenceAcrossRemount) {
  Env env;
  std::mt19937 rng(GetParam());
  MemStore ref;
  auto store = std::make_unique<bluestore::BlueStore>(env, nullptr, cfg());
  auto backing = store->backing();
  constexpr int kMaxObj = 12;

  run_sim(env, [&] {
    ASSERT_TRUE(store->mkfs().ok());
    ASSERT_TRUE(store->mount().ok());
    {
      Transaction t;
      t.create_collection(kColl);
      Transaction t2;
      t2.create_collection(kColl);
      std::mutex m;
      CondVar cv(env.keeper());
      bool done = false;
      Status st;
      store->queue_transaction(std::move(t), [&](Status s) {
        const std::lock_guard<std::mutex> lk(m);
        st = s;
        done = true;
        cv.notify_all();
      });
      ref.queue_transaction(std::move(t2), nullptr);
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return done; });
      ASSERT_TRUE(st.ok());
    }

    for (int i = 0; i < 120; ++i) {
      std::mt19937 fork = rng;  // same stream for both stores
      Transaction ta = random_txn(rng, kMaxObj);
      Transaction tb = random_txn(fork, kMaxObj);
      std::mutex m;
      CondVar cv(env.keeper());
      bool done = false;
      Status sa;
      store->queue_transaction(std::move(ta), [&](Status s) {
        const std::lock_guard<std::mutex> lk(m);
        sa = s;
        done = true;
        cv.notify_all();
      });
      Status sb;
      ref.queue_transaction(std::move(tb), [&](Status s) { sb = s; });
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return done; });
      EXPECT_EQ(sa.code(), sb.code()) << "op " << i;
      if (i % 30 == 29) expect_equal(*store, ref, kMaxObj, "mid-stream");
    }
    expect_equal(*store, ref, kMaxObj, "before remount");
    ASSERT_TRUE(store->umount().ok());
  });

  // Remount from the same device backing: durable state must still match.
  store = std::make_unique<bluestore::BlueStore>(env, nullptr, cfg(), backing);
  run_sim(env, [&] {
    ASSERT_TRUE(store->mount().ok());
    expect_equal(*store, ref, kMaxObj, "after remount");
    ASSERT_TRUE(store->umount().ok());
  });
}

TEST_P(StorePropertyTest, CommittedStateSurvivesCrash) {
  Env env;
  std::mt19937 rng(GetParam() + 1000);
  MemStore ref;
  auto store = std::make_unique<bluestore::BlueStore>(env, nullptr, cfg());
  auto backing = store->backing();
  constexpr int kMaxObj = 8;

  run_sim(env, [&] {
    ASSERT_TRUE(store->mkfs().ok());
    ASSERT_TRUE(store->mount().ok());
    Transaction t;
    t.create_collection(kColl);
    Status st;
    std::mutex m;
    CondVar cv(env.keeper());
    bool done = false;
    store->queue_transaction(std::move(t), [&](Status s) {
      const std::lock_guard<std::mutex> lk(m);
      st = s;
      done = true;
      cv.notify_all();
    });
    {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return done; });
    }
    Transaction t2;
    t2.create_collection(kColl);
    ref.queue_transaction(std::move(t2), nullptr);

    // Apply ops synchronously (committed) and mirror them into the reference.
    for (int i = 0; i < 40; ++i) {
      std::mt19937 fork = rng;
      Transaction ta = random_txn(rng, kMaxObj);
      Transaction tb = random_txn(fork, kMaxObj);
      std::mutex m2;
      CondVar cv2(env.keeper());
      bool done2 = false;
      store->queue_transaction(std::move(ta), [&](Status) {
        const std::lock_guard<std::mutex> lk(m2);
        done2 = true;
        cv2.notify_all();
      });
      ref.queue_transaction(std::move(tb), nullptr);
      std::unique_lock<std::mutex> lk2(m2);
      cv2.wait(lk2, [&] { return done2; });
    }
    // Crash without umount: everything above was acked, so it must replay.
    store->simulate_crash();
  });

  store = std::make_unique<bluestore::BlueStore>(env, nullptr, cfg(), backing);
  run_sim(env, [&] {
    ASSERT_TRUE(store->mount().ok());
    expect_equal(*store, ref, kMaxObj, "after crash replay");
    ASSERT_TRUE(store->umount().ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorePropertyTest,
                         ::testing::Values(11u, 23u, 37u, 59u));

}  // namespace
}  // namespace doceph::os
