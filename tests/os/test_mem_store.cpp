#include "os/mem_store.h"

#include <gtest/gtest.h>

namespace doceph::os {
namespace {

const coll_t kColl{2, 0};
const ghobject_t kObj{2, "obj"};

class MemStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Transaction t;
    t.create_collection(kColl);
    commit(std::move(t));
  }

  Status commit(Transaction t) {
    Status out;
    store_.queue_transaction(std::move(t), [&](Status st) { out = st; });
    return out;
  }

  MemStore store_;
};

TEST_F(MemStoreTest, WriteFullAndRead) {
  Transaction t;
  t.write_full(kColl, kObj, BufferList::copy_of("hello world"));
  EXPECT_TRUE(commit(std::move(t)).ok());

  auto r = store_.read(kColl, kObj, 0, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->to_string(), "hello world");

  auto mid = store_.read(kColl, kObj, 6, 5);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->to_string(), "world");
}

TEST_F(MemStoreTest, ReadPastEndClamps) {
  Transaction t;
  t.write_full(kColl, kObj, BufferList::copy_of("abc"));
  commit(std::move(t));
  auto r = store_.read(kColl, kObj, 2, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->to_string(), "c");
  auto past = store_.read(kColl, kObj, 10, 5);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past->empty());
}

TEST_F(MemStoreTest, WriteAtOffsetExtends) {
  Transaction t;
  t.write(kColl, kObj, 4, BufferList::copy_of("tail"));
  commit(std::move(t));
  auto r = store_.read(kColl, kObj, 0, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->to_string(), std::string("\0\0\0\0tail", 8));
}

TEST_F(MemStoreTest, OverwritePreservesRest) {
  Transaction t;
  t.write_full(kColl, kObj, BufferList::copy_of("0123456789"));
  t.write(kColl, kObj, 3, BufferList::copy_of("XYZ"));
  commit(std::move(t));
  EXPECT_EQ(store_.read(kColl, kObj, 0, 0)->to_string(), "012XYZ6789");
}

TEST_F(MemStoreTest, ZeroAndTruncate) {
  Transaction t;
  t.write_full(kColl, kObj, BufferList::copy_of("abcdefgh"));
  t.zero(kColl, kObj, 2, 3);
  commit(std::move(t));
  EXPECT_EQ(store_.read(kColl, kObj, 0, 0)->to_string(),
            std::string("ab\0\0\0fgh", 8));
  Transaction t2;
  t2.truncate(kColl, kObj, 4);
  commit(std::move(t2));
  EXPECT_EQ(store_.stat(kColl, kObj)->size, 4u);
}

TEST_F(MemStoreTest, StatTracksVersionAndSize) {
  Transaction t;
  t.write_full(kColl, kObj, BufferList::copy_of("v1"));
  commit(std::move(t));
  auto s1 = store_.stat(kColl, kObj);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->size, 2u);
  Transaction t2;
  t2.write_full(kColl, kObj, BufferList::copy_of("vtwo"));
  commit(std::move(t2));
  auto s2 = store_.stat(kColl, kObj);
  EXPECT_EQ(s2->size, 4u);
  EXPECT_GT(s2->version, s1->version);
}

TEST_F(MemStoreTest, TouchCreatesEmpty) {
  Transaction t;
  t.touch(kColl, kObj);
  commit(std::move(t));
  EXPECT_TRUE(store_.exists(kColl, kObj));
  EXPECT_EQ(store_.stat(kColl, kObj)->size, 0u);
}

TEST_F(MemStoreTest, RemoveObject) {
  Transaction t;
  t.write_full(kColl, kObj, BufferList::copy_of("x"));
  commit(std::move(t));
  Transaction t2;
  t2.remove(kColl, kObj);
  commit(std::move(t2));
  EXPECT_FALSE(store_.exists(kColl, kObj));
  EXPECT_EQ(store_.read(kColl, kObj, 0, 0).status().code(), Errc::not_found);
}

TEST_F(MemStoreTest, OmapSetGetRemove) {
  Transaction t;
  t.touch(kColl, kObj);
  t.omap_set(kColl, kObj, {{"k1", BufferList::copy_of("v1")},
                           {"k2", BufferList::copy_of("v2")}});
  commit(std::move(t));
  auto m = store_.omap_get(kColl, kObj);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 2u);
  EXPECT_EQ(m->at("k1").to_string(), "v1");

  Transaction t2;
  t2.omap_rm_keys(kColl, kObj, {"k1"});
  commit(std::move(t2));
  EXPECT_EQ(store_.omap_get(kColl, kObj)->size(), 1u);
}

TEST_F(MemStoreTest, ListObjectsSorted) {
  Transaction t;
  t.touch(kColl, {2, "b"});
  t.touch(kColl, {2, "a"});
  t.touch(kColl, {2, "c"});
  commit(std::move(t));
  auto l = store_.list_objects(kColl);
  ASSERT_TRUE(l.ok());
  ASSERT_EQ(l->size(), 3u);
  EXPECT_EQ((*l)[0].name, "a");
  EXPECT_EQ((*l)[2].name, "c");
}

TEST_F(MemStoreTest, MissingCollectionFails) {
  const coll_t other{9, 9};
  Transaction t;
  t.touch(other, kObj);
  EXPECT_EQ(commit(std::move(t)).code(), Errc::not_found);
  EXPECT_FALSE(store_.collection_exists(other));
  EXPECT_EQ(store_.read(other, kObj, 0, 0).status().code(), Errc::not_found);
}

TEST_F(MemStoreTest, RemoveCollection) {
  Transaction t;
  t.write_full(kColl, kObj, BufferList::copy_of("x"));
  commit(std::move(t));
  Transaction t2;
  t2.remove_collection(kColl);
  commit(std::move(t2));
  EXPECT_FALSE(store_.collection_exists(kColl));
  EXPECT_EQ(store_.list_collections().size(), 0u);
}

TEST_F(MemStoreTest, CommitCallbackOrderPreserved) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    Transaction t;
    t.touch(kColl, {2, "o" + std::to_string(i)});
    store_.queue_transaction(std::move(t), [&order, i](Status) { order.push_back(i); });
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace doceph::os
