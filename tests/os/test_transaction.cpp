#include "os/transaction.h"

#include <gtest/gtest.h>

namespace doceph::os {
namespace {

const coll_t kColl{1, 3};
const ghobject_t kObj{1, "alpha"};

TEST(Transaction, BuildersRecordOps) {
  Transaction t;
  EXPECT_TRUE(t.empty());
  t.create_collection(kColl);
  t.touch(kColl, kObj);
  t.write_full(kColl, kObj, BufferList::copy_of("hello"));
  t.write(kColl, kObj, 2, BufferList::copy_of("xy"));
  t.zero(kColl, kObj, 0, 4);
  t.truncate(kColl, kObj, 3);
  t.omap_set(kColl, kObj, {{"k", BufferList::copy_of("v")}});
  t.omap_rm_keys(kColl, kObj, {"k"});
  t.remove(kColl, kObj);
  t.remove_collection(kColl);
  EXPECT_EQ(t.num_ops(), 10u);
  EXPECT_EQ(t.ops()[2].op, TxnOp::write_full);
  EXPECT_EQ(t.ops()[2].len, 5u);
  EXPECT_EQ(t.ops()[3].off, 2u);
}

TEST(Transaction, DataBytesCountsPayloads) {
  Transaction t;
  t.write_full(kColl, kObj, BufferList::copy_of(std::string(100, 'a')));
  t.write(kColl, kObj, 0, BufferList::copy_of(std::string(50, 'b')));
  t.omap_set(kColl, kObj, {{"key", BufferList::copy_of(std::string(10, 'c'))}});
  t.touch(kColl, kObj);
  EXPECT_EQ(t.data_bytes(), 160u);
}

TEST(Transaction, EncodeDecodeRoundTrip) {
  Transaction t;
  t.create_collection(kColl);
  t.write_full(kColl, kObj, BufferList::copy_of("content-bytes"));
  t.omap_set(kColl, kObj, {{"a", BufferList::copy_of("1")},
                           {"b", BufferList::copy_of("2")}});
  t.omap_rm_keys(kColl, kObj, {"zz"});
  t.truncate(kColl, kObj, 99);

  const BufferList bl = encode_to_bl(t);
  Transaction u;
  ASSERT_TRUE(decode_from_bl(u, bl));
  ASSERT_EQ(u.num_ops(), t.num_ops());
  for (std::size_t i = 0; i < t.num_ops(); ++i) {
    EXPECT_EQ(u.ops()[i].op, t.ops()[i].op) << i;
    EXPECT_EQ(u.ops()[i].cid, t.ops()[i].cid) << i;
    EXPECT_EQ(u.ops()[i].oid, t.ops()[i].oid) << i;
    EXPECT_EQ(u.ops()[i].off, t.ops()[i].off) << i;
    EXPECT_TRUE(u.ops()[i].data == t.ops()[i].data) << i;
    EXPECT_EQ(u.ops()[i].keys, t.ops()[i].keys) << i;
  }
}

TEST(Transaction, DecodeMalformedFails) {
  Transaction t;
  t.write_full(kColl, kObj, BufferList::copy_of("payload"));
  BufferList bl = encode_to_bl(t);
  BufferList trunc = bl.substr(0, bl.length() - 3);
  Transaction u;
  EXPECT_FALSE(decode_from_bl(u, trunc));
}

TEST(Transaction, AppendMovesOps) {
  Transaction a, b;
  a.touch(kColl, kObj);
  b.remove(kColl, kObj);
  b.truncate(kColl, kObj, 1);
  a.append(std::move(b));
  EXPECT_EQ(a.num_ops(), 3u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.ops()[1].op, TxnOp::remove);
}

TEST(Transaction, TypesEncodeRoundTrip) {
  const BufferList bl = encode_to_bl(kObj);
  ghobject_t o;
  ASSERT_TRUE(decode_from_bl(o, bl));
  EXPECT_EQ(o, kObj);

  const BufferList cb = encode_to_bl(kColl);
  coll_t c;
  ASSERT_TRUE(decode_from_bl(c, cb));
  EXPECT_EQ(c, kColl);
  EXPECT_EQ(c.to_string(), "1.3");
}

}  // namespace
}  // namespace doceph::os
