// doceph_lint negative fixture: a bare std::mutex (and friends) declared in
// product code without a waiver. Never compiled — consumed by
// `scripts/doceph_lint.py --self-test tests/lint`, which fails if the linter
// stops flagging it.
//
// doceph-lint-expect: bare-mutex

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace doceph::fixture {

class SneakyComponent {
 public:
  void poke() {
    const std::lock_guard<std::mutex> lk(mutex_);  // usage alone is fine
    ++state_;
  }

 private:
  std::mutex mutex_;                 // flagged: bare primitive state
  std::condition_variable cv_;       // flagged
  std::shared_mutex rw_;             // flagged
  std::mutex waived_;  // doceph-lint: allow(bare-mutex) fixture: waived line must NOT be the only finding
  int state_ = 0;
};

}  // namespace doceph::fixture
