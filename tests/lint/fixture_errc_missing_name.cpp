// Negative fixture for the errc-to-string rule: an Errc enumerator added
// without a matching case in errc_name(). Never compiled — linter input
// proving scripts/doceph_lint.py still flags the violation class.
// doceph-lint-expect: errc-to-string
#include <string_view>

namespace fixture {

enum class Errc : int {
  ok = 0,
  no_space,
  throttled,  // new code, forgot the errc_name() case below
};

std::string_view errc_name(Errc c) noexcept {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::no_space: return "no_space";
  }
  return "unknown";
}

}  // namespace fixture
