// doceph_lint negative fixture: two perf-counter enum blocks whose index
// ranges overlap — merged `perf dump`s would alias slots. Never compiled —
// consumed by `scripts/doceph_lint.py --self-test tests/lint`.
//
// doceph-lint-expect: counter-range

#pragma once

namespace doceph::fixture {

enum {
  l_widget_first = 97000,
  l_widget_ops,
  l_widget_errors,
  l_widget_lat,
  l_widget_last,
};

enum {
  l_gadget_first = 97002,  // flagged: lands inside the widget block
  l_gadget_ops,
  l_gadget_last,
};

}  // namespace doceph::fixture
