// doceph_lint negative fixture: arming/consulting a fault point whose name
// is not declared in src/common/fault_points.h — the typo class the
// registry exists to catch. Never compiled — consumed by
// `scripts/doceph_lint.py --self-test tests/lint`.
//
// doceph-lint-expect: fault-point

#include "common/fault.h"

namespace doceph::fixture {

inline void typo_fault(fault::FaultRegistry& reg) {
  // flagged: "osd.hardcrash" (missing underscore) is not in the registry;
  // arming it would silently never fire.
  reg.fire_next("osd.hardcrash", 1);
  // flagged: consulting a never-registered point.
  (void)reg.should_fire("net.jitterr", 0);
}

}  // namespace doceph::fixture
