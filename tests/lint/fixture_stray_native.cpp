// doceph_lint negative fixture: dbg::Mutex::native() used outside the
// condvar substrate (src/dbg/, src/sim/time_keeper.*). Never compiled —
// consumed by `scripts/doceph_lint.py --self-test tests/lint`.
//
// doceph-lint-expect: native

#include <mutex>  // doceph-lint: allow(bare-mutex) fixture include

#include "dbg/mutex.h"

namespace doceph::fixture {

inline void bypass_lockdep(dbg::Mutex& m) {
  // flagged: this lock acquisition is invisible to lockdep and to the
  // thread-safety analysis.
  const std::lock_guard<std::mutex> lk(m.native());
}

}  // namespace doceph::fixture
