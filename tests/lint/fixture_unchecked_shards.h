// doceph_lint negative fixture: a `*_shards` config knob declared with no
// bounds check anywhere in the file — a zero would reach `% shards` as a
// modulo-by-zero. Never compiled — consumed by
// `scripts/doceph_lint.py --self-test tests/lint`.
//
// doceph-lint-expect: shard-bounds

#pragma once

namespace doceph::fixture {

struct WidgetConfig {
  // Flagged: no std::max/std::clamp/assert line mentions widget_shards.
  int widget_shards = 4;

  // Not flagged: the clamp below names it.
  int gadget_shards = 1;
};

inline WidgetConfig parse_widget_config(int gadget) {
  WidgetConfig cfg;
  cfg.gadget_shards = std::max(1, gadget);  // shard-bounds: knob >= 1
  return cfg;
}

}  // namespace doceph::fixture
