// doceph_lint negative fixture: a span-name literal that is not declared in
// src/common/trace_points.h — the typo class the registry exists to catch.
// Never compiled — consumed by `scripts/doceph_lint.py --self-test tests/lint`.
//
// doceph-lint-expect: trace-point

#include "common/trace.h"
#include "sim/env.h"

namespace doceph::fixture {

inline void typo_span(sim::Env& env, const trace::TraceContext& parent) {
  // flagged: "osd.stage.mesenger" (typo) is not in the registry; the span
  // would render as an orphan disconnected from the op's tree.
  auto sp = env.tracer().span("osd.stage.mesenger", "osd.0", parent, env.now());
  // flagged: retrospective recording with an unregistered name.
  env.tracer().record_span("dpu.wrte", "dpu.dpu-0", parent, 0, 1);
}

}  // namespace doceph::fixture
